package cache

import "fmt"

// TLBConfig describes a data TLB — one of the paper's §7 "new features":
// TLB misses act much like long data cache misses, stalling retirement for
// a page-walk latency.
type TLBConfig struct {
	// Entries is the number of TLB entries (fully associative, LRU).
	Entries int
	// PageBytes is the page size; must be a power of two.
	PageBytes uint64
	// MissLatency is the page-walk latency in cycles.
	MissLatency int
}

// DefaultTLB returns a 64-entry, 4 KB-page TLB with an 80-cycle walk.
// The walk latency deliberately exceeds the baseline machine's maximum
// ROB fill time (rob_size/dispatch_width = 32 cycles), putting TLB misses
// in the paper's "long" category — they block retirement rather than
// being absorbed like long-latency functional units.
func DefaultTLB() TLBConfig {
	return TLBConfig{Entries: 64, PageBytes: 4 << 10, MissLatency: 80}
}

// Validate reports the first structural problem with the configuration.
func (c TLBConfig) Validate() error {
	switch {
	case c.Entries <= 0:
		return fmt.Errorf("tlb: non-positive entry count %d", c.Entries)
	case c.PageBytes == 0 || c.PageBytes&(c.PageBytes-1) != 0:
		return fmt.Errorf("tlb: page size %d not a power of two", c.PageBytes)
	case c.MissLatency <= 0:
		return fmt.Errorf("tlb: non-positive miss latency %d", c.MissLatency)
	}
	return nil
}

// TLB is a fully associative, LRU translation lookaside buffer.
type TLB struct {
	cfg       TLBConfig
	pageShift uint
	pages     []uint64
	stamp     []uint64
	valid     []bool
	clock     uint64

	// Accesses and Misses count every Access call.
	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB from cfg.
func NewTLB(cfg TLBConfig) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shift := uint(0)
	for p := cfg.PageBytes; p > 1; p >>= 1 {
		shift++
	}
	return &TLB{
		cfg:       cfg,
		pageShift: shift,
		pages:     make([]uint64, cfg.Entries),
		stamp:     make([]uint64, cfg.Entries),
		valid:     make([]bool, cfg.Entries),
	}, nil
}

// Config returns the TLB geometry.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Access translates addr, filling on a miss, and reports a hit.
func (t *TLB) Access(addr uint64) bool {
	t.Accesses++
	t.clock++
	page := addr >> t.pageShift
	victim := 0
	oldest := ^uint64(0)
	for i := range t.pages {
		if t.valid[i] && t.pages[i] == page {
			t.stamp[i] = t.clock
			return true
		}
		if !t.valid[i] {
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		if t.stamp[i] < oldest {
			victim, oldest = i, t.stamp[i]
		}
	}
	t.Misses++
	t.pages[victim] = page
	t.valid[victim] = true
	t.stamp[victim] = t.clock
	return false
}

// MissRate returns Misses/Accesses, or 0 for an untouched TLB.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// Reset invalidates all entries and clears statistics.
func (t *TLB) Reset() {
	for i := range t.valid {
		t.valid[i] = false
		t.stamp[i] = 0
	}
	t.clock = 0
	t.Accesses = 0
	t.Misses = 0
}
