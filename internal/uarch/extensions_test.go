package uarch

import (
	"math"
	"testing"

	"fomodel/internal/cache"
	"fomodel/internal/isa"
	"fomodel/internal/trace"
)

func TestFULimitThrottlesClass(t *testing.T) {
	// A stream of independent multiplies: unbounded units sustain
	// width/cycle; a single pipelined multiplier sustains 1/cycle.
	tr := &trace.Trace{Name: "mul"}
	for i := 0; i < 8000; i++ {
		tr.Instrs = append(tr.Instrs, trace.Instruction{
			PC: hotPC, Class: isa.Mul,
			Dest: int16(i % isa.NumArchRegs), Src1: isa.RegNone, Src2: isa.RegNone,
		})
	}
	cfg := testConfig()
	free := mustSim(t, tr, cfg)
	if math.Abs(free.IPC()-4) > 0.1 {
		t.Fatalf("unbounded mul IPC %v, want ~4", free.IPC())
	}
	cfg.FUCounts[isa.Mul] = 1
	limited := mustSim(t, tr, cfg)
	if math.Abs(limited.IPC()-1) > 0.05 {
		t.Fatalf("single-multiplier IPC %v, want ~1", limited.IPC())
	}
}

func TestFULimitDoesNotBlockOtherClasses(t *testing.T) {
	// Alternating mul/alu with a single multiplier: ALUs flow around the
	// limited class, so throughput stays near 2 (one of each per cycle).
	tr := &trace.Trace{Name: "mix"}
	for i := 0; i < 8000; i++ {
		c := isa.ALU
		if i%2 == 0 {
			c = isa.Mul
		}
		tr.Instrs = append(tr.Instrs, trace.Instruction{
			PC: hotPC, Class: c,
			Dest: int16(i % isa.NumArchRegs), Src1: isa.RegNone, Src2: isa.RegNone,
		})
	}
	cfg := testConfig()
	cfg.FUCounts[isa.Mul] = 1
	r := mustSim(t, tr, cfg)
	if r.IPC() < 1.8 {
		t.Fatalf("mixed IPC %v, want ~2 (ALUs must bypass the mul limit)", r.IPC())
	}
}

func TestFetchBufferHidesIsolatedICacheMisses(t *testing.T) {
	// Two parallel dependence chains give ~2 IPC at width 4, so fetch
	// has 2 instructions/cycle of slack to run ahead. An isolated
	// L2-missing code line every 1024 instructions (200-cycle delay)
	// overwhelms the base pipeline-plus-window coverage (~15 cycles of
	// consumption), but a 256-entry fetch buffer covers an extra
	// 256/2 = 128 cycles of it.
	mk := func() *trace.Trace {
		tr := &trace.Trace{Name: "buf"}
		coldLine := uint64(0x800_0000)
		for i := 0; i < 20000; i++ {
			pc := uint64(hotPC)
			if i%1024 == 512 {
				pc = coldLine
				coldLine += 128
			}
			in := trace.Instruction{
				PC: pc, Class: isa.ALU,
				Dest: int16(i % isa.NumArchRegs), Src1: isa.RegNone, Src2: isa.RegNone,
			}
			if i >= 2 {
				in.Src1 = int16((i - 2) % isa.NumArchRegs)
			}
			tr.Instrs = append(tr.Instrs, in)
		}
		return tr
	}
	cfg := testConfig()
	cfg.IdealICache = false
	cfg.Warmup = false
	without := mustSim(t, mk(), cfg)
	if without.ICacheLong == 0 {
		t.Fatal("expected long I-cache misses")
	}
	cfg.FetchBufferSize = 256
	with := mustSim(t, mk(), cfg)
	saved := without.Cycles - with.Cycles
	perMiss := float64(saved) / float64(without.ICacheLong)
	// The buffer should hide on the order of buffer/IPC = 128 cycles of
	// each 200-cycle miss.
	if perMiss < 60 {
		t.Fatalf("fetch buffer hid only %.1f cycles per miss (total %d vs %d)",
			perMiss, with.Cycles, without.Cycles)
	}
}

func TestTLBMissExtendsLatencyAndCounts(t *testing.T) {
	// Loads striding across pages: every page touch misses a tiny TLB.
	mk := func() *trace.Trace {
		tr := &trace.Trace{Name: "tlb"}
		for i := 0; i < 3000; i++ {
			in := aluInstr(i)
			if i%10 == 5 {
				in.Class = isa.Load
				in.Addr = 0x1000_0000 + uint64(i)*4096
			}
			tr.Instrs = append(tr.Instrs, in)
		}
		return tr
	}
	cfg := testConfig()
	base := mustSim(t, mk(), cfg)
	tlb := cache.TLBConfig{Entries: 4, PageBytes: 4096, MissLatency: 50}
	cfg.TLB = &tlb
	r := mustSim(t, mk(), cfg)
	if r.TLBMisses == 0 {
		t.Fatal("no TLB misses observed")
	}
	if r.Cycles <= base.Cycles {
		t.Fatal("TLB misses did not cost cycles")
	}
	perMiss := float64(r.Cycles-base.Cycles) / float64(r.TLBMisses)
	// Strided misses within the ROB overlap heavily, so the per-miss
	// cost sits well below the walk latency but stays positive.
	if perMiss <= 0 || perMiss > 60 {
		t.Fatalf("per-miss TLB cost %v, want (0, 60]", perMiss)
	}
}

func TestTLBHitsAreFree(t *testing.T) {
	// All loads in one page: one compulsory miss, everything else hits.
	mk := func() *trace.Trace {
		tr := &trace.Trace{Name: "tlbhot"}
		for i := 0; i < 2000; i++ {
			in := aluInstr(i)
			if i%10 == 5 {
				in.Class = isa.Load
				in.Addr = 0x1000_0000 + uint64(i%512)
			}
			tr.Instrs = append(tr.Instrs, in)
		}
		return tr
	}
	cfg := testConfig()
	tlb := cache.DefaultTLB()
	cfg.TLB = &tlb
	r := mustSim(t, mk(), cfg)
	if r.TLBMisses != 1 {
		t.Fatalf("TLB misses %d, want 1 (compulsory only)", r.TLBMisses)
	}
}

func TestExtensionConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FUCounts[isa.Mul] = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative FU count accepted")
	}
	cfg = DefaultConfig()
	cfg.FetchBufferSize = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative fetch buffer accepted")
	}
	cfg = DefaultConfig()
	cfg.TLB = &cache.TLBConfig{}
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid TLB accepted")
	}
}

func TestFrontEndOccupancyDiagnostic(t *testing.T) {
	r := mustSim(t, chain(3000), testConfig())
	occ := r.AvgFrontEndOccupancy()
	cfg := testConfig()
	max := float64(cfg.FrontEndDepth * cfg.Width)
	if occ <= 0 || occ > max {
		t.Fatalf("front-end occupancy %v outside (0, %v]", occ, max)
	}
}

func TestClusteringCostsBypass(t *testing.T) {
	// A dependence chain pays the bypass on (K-1)/K of its edges under
	// round-robin steering: at K=2 with a 1-cycle bypass every edge
	// crosses (consecutive indices alternate clusters), so the chain
	// runs at 1 instruction per 2 cycles.
	tr := chain(4000)
	cfg := testConfig()
	base := mustSim(t, tr, cfg)
	cfg.Clusters = 2
	cfg.BypassLatency = 1
	clustered := mustSim(t, tr, cfg)
	if math.Abs(base.IPC()-1) > 0.05 {
		t.Fatalf("unified chain IPC %v", base.IPC())
	}
	if math.Abs(clustered.IPC()-0.5) > 0.05 {
		t.Fatalf("2-cluster chain IPC %v, want ~0.5 (every edge crosses)", clustered.IPC())
	}
}

func TestClusteringIndependentStreamUnaffected(t *testing.T) {
	// Independent instructions don't care about bypass; per-cluster
	// issue width sums to the machine width, so throughput holds.
	tr := independent(8000)
	cfg := testConfig()
	cfg.Clusters = 4
	cfg.BypassLatency = 2
	r := mustSim(t, tr, cfg)
	if math.Abs(r.IPC()-4) > 0.1 {
		t.Fatalf("clustered independent IPC %v, want ~4", r.IPC())
	}
}

func TestClusteringValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clusters = 3 // width 4 not divisible
	if err := cfg.Validate(); err == nil {
		t.Fatal("indivisible width accepted")
	}
	cfg = DefaultConfig()
	cfg.Clusters = 2
	cfg.WindowSize = 49
	cfg.ROBSize = 128
	if err := cfg.Validate(); err == nil {
		t.Fatal("indivisible window accepted")
	}
	cfg = DefaultConfig()
	cfg.Clusters = 2
	cfg.BypassLatency = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative bypass accepted")
	}
}
