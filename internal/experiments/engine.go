package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the parallel experiment engine: a bounded worker pool that
// fans independent pieces of work — workload analyses, simulator runs,
// whole experiments — out across goroutines while keeping every rendered
// result in deterministic report order. The rule throughout is "compute
// concurrently, render in order": workers may finish in any order, but
// results are always consumed on the calling goroutine in index order, so
// a run with one worker and a run with N workers produce byte-identical
// output.

// DefaultWorkers is the engine's default pool size: one worker per
// available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// normalizeWorkers maps the "unset" zero value (and negatives) to the
// default pool size.
func normalizeWorkers(workers int) int {
	if workers <= 0 {
		return DefaultWorkers()
	}
	return workers
}

// PanicError is a panic recovered from an engine worker, carrying the
// panic value and the worker's stack. The engine converts panics into
// ordinary errors so one panicking job cannot kill the whole process —
// in the daemon, a pooled sweep or batch worker that panics surfaces as
// a 500 response instead of tearing the server down.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("experiments: worker panic: %v", e.Value)
}

// guard invokes compute(i), converting a panic into a *PanicError.
func guard[T any](compute func(int) (T, error), i int) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return compute(i)
}

// RunOrdered runs n independent jobs on a pool of at most workers
// goroutines (0 means DefaultWorkers) and delivers each result to emit on
// the calling goroutine, strictly in index order. compute(i) may run
// concurrently with any other compute(j); emit never does, and emit(i, …)
// always happens before emit(i+1, …).
//
// The first error — from compute, in index order, or from emit — stops
// the ordered delivery and is returned. Jobs already started keep running
// to completion in the background, but no new jobs are handed out.
func RunOrdered[T any](workers, n int, compute func(int) (T, error), emit func(int, T) error) error {
	if n <= 0 {
		return nil
	}
	workers = normalizeWorkers(workers)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			v, err := guard(compute, i)
			if err != nil {
				return err
			}
			if emit != nil {
				if err := emit(i, v); err != nil {
					return err
				}
			}
		}
		return nil
	}

	type slot struct {
		v   T
		err error
	}
	results := make([]slot, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}

	// The feeder hands out indices until the work is done or the consumer
	// bails out early; quit keeps it from leaking in the latter case.
	work := make(chan int)
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		defer close(work)
		for i := 0; i < n; i++ {
			select {
			case work <- i:
			case <-quit:
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		go func() {
			for i := range work {
				results[i].v, results[i].err = guard(compute, i)
				close(done[i])
			}
		}()
	}

	for i := 0; i < n; i++ {
		<-done[i]
		if err := results[i].err; err != nil {
			return err
		}
		if emit != nil {
			if err := emit(i, results[i].v); err != nil {
				return err
			}
		}
	}
	return nil
}

// MapWorkloads computes fn for every benchmark concurrently (bounded by
// s.Workers) and returns the per-benchmark results in report order, so
// parallel and sequential runs build identical result slices. fn runs on
// pool goroutines and must not touch shared mutable state. Like
// EachWorkload, the first failure in report order wins, wrapped with the
// benchmark name.
func MapWorkloads[T any](s *Suite, fn func(*Workload) (T, error)) ([]T, error) {
	out := make([]T, 0, len(s.Names))
	err := RunOrdered(s.workers(), len(s.Names), func(i int) (T, error) {
		name := s.Names[i]
		w, err := s.Workload(name)
		if err != nil {
			var zero T
			return zero, fmt.Errorf("experiments: %s: %w", name, err)
		}
		v, err := fn(w)
		if err != nil {
			return v, fmt.Errorf("experiments: %s: %w", name, err)
		}
		return v, nil
	}, func(_ int, v T) error {
		out = append(out, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Job is one named unit of engine work.
type Job struct {
	Name string
	Run  func() error
}

// Engine runs independent named jobs — typically whole experiments — on a
// bounded worker pool.
type Engine struct {
	// Workers bounds the pool; 0 means DefaultWorkers.
	Workers int
	// Timings, when non-nil, receives one "experiment" sample per job.
	Timings *Timings
}

// NewEngine returns an engine with the given pool size (0 means
// DefaultWorkers).
func NewEngine(workers int) *Engine { return &Engine{Workers: workers} }

// Do runs every job on the pool and waits for all of them to finish. The
// returned error is the earliest failure in argument order, so the
// outcome does not depend on goroutine scheduling.
func (e *Engine) Do(jobs ...Job) error {
	workers := normalizeWorkers(e.Workers)
	sem := make(chan struct{}, workers)
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			_, errs[i] = guard(func(i int) (struct{}, error) {
				return struct{}{}, jobs[i].Run()
			}, i)
			e.Timings.Record("experiment", jobs[i].Name, time.Since(start))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TimingSample is one named wall-time measurement.
type TimingSample struct {
	// Phase groups samples ("workload", "experiment").
	Phase string
	// Name identifies the benchmark or experiment label.
	Name string
	// Elapsed is the measured wall time.
	Elapsed time.Duration
}

// Timings collects named wall-time samples from concurrently executing
// work. All methods are safe for concurrent use, and every method is a
// no-op on a nil receiver so instrumented code paths need no guards.
type Timings struct {
	mu      sync.Mutex
	samples []TimingSample
}

// Record appends one sample.
func (t *Timings) Record(phase, name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.samples = append(t.samples, TimingSample{Phase: phase, Name: name, Elapsed: d})
	t.mu.Unlock()
}

// Samples returns a copy of the collected samples sorted by phase, then
// descending elapsed time, then name.
func (t *Timings) Samples() []TimingSample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TimingSample, len(t.samples))
	copy(out, t.samples)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		if out[i].Elapsed != out[j].Elapsed {
			return out[i].Elapsed > out[j].Elapsed
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Render prints the samples as an aligned table, slowest first within
// each phase, with a per-phase total. The output is wall-time based and
// therefore not covered by the engine's byte-identical-output guarantee.
func (t *Timings) Render() string {
	samples := t.Samples()
	if len(samples) == 0 {
		return ""
	}
	tab := &table{
		title:  "Timing breakdown (wall time per unit of engine work)",
		header: []string{"phase", "name", "elapsed"},
	}
	totals := map[string]time.Duration{}
	var order []string
	for _, s := range samples {
		if _, ok := totals[s.Phase]; !ok {
			order = append(order, s.Phase)
		}
		totals[s.Phase] += s.Elapsed
		tab.addRow(s.Phase, s.Name, s.Elapsed.Round(time.Millisecond).String())
	}
	parts := make([]string, 0, len(order))
	for _, phase := range order {
		parts = append(parts, fmt.Sprintf("%s %s", phase, totals[phase].Round(time.Millisecond)))
	}
	tab.addNote("totals: %s (concurrent work overlaps, so totals can exceed wall time)",
		strings.Join(parts, ", "))
	return tab.String()
}
