// CPI stack: the paper's Fig. 16 "stack model" across all twelve
// SPECint2000-like workloads, rendered as text bars. Because the
// miss-event penalties add independently (Fig. 2), the model decomposes
// each benchmark's CPI into where the cycles go — the kind of insight a
// detailed simulator does not surface directly.
//
// Run with:
//
//	go run ./examples/cpistack
package main

import (
	"fmt"
	"log"
	"strings"

	"fomodel/internal/experiments"
)

func main() {
	suite := experiments.NewSuite(200000, 1)
	res, err := experiments.Figure16(suite)
	if err != nil {
		log.Fatal(err)
	}

	const scale = 60 // character cells per CPI
	fmt.Println("CPI stacks (i=ideal, b=branch, $=L1 I-cache, L=L2 I-cache, D=long D-miss)")
	fmt.Println()
	for _, row := range res.Rows {
		e := row.Estimate
		bar := strings.Repeat("i", cells(e.SteadyCPI, scale)) +
			strings.Repeat("$", cells(e.ICacheShortCPI, scale)) +
			strings.Repeat("L", cells(e.ICacheLongCPI, scale)) +
			strings.Repeat("D", cells(e.DCacheCPI, scale)) +
			strings.Repeat("b", cells(e.BranchCPI, scale))
		fmt.Printf("%-7s %.3f |%s\n", row.Name, e.CPI, bar)
	}
	fmt.Println()
	fmt.Println("dominant component per benchmark:")
	for _, row := range res.Rows {
		e := row.Estimate
		kind, v := "steady-state", e.SteadyCPI
		for _, c := range []struct {
			kind string
			v    float64
		}{
			{"branch mispredictions", e.BranchCPI},
			{"L1 I-cache misses", e.ICacheShortCPI},
			{"L2 I-cache misses", e.ICacheLongCPI},
			{"long D-cache misses", e.DCacheCPI},
		} {
			if c.v > v {
				kind, v = c.kind, c.v
			}
		}
		fmt.Printf("  %-7s %-22s (%.0f%% of CPI)\n", row.Name, kind, 100*v/e.CPI)
	}
}

func cells(v float64, scale int) int {
	n := int(v*float64(scale) + 0.5)
	if v > 0 && n == 0 {
		n = 1
	}
	return n
}
