package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fomodel/internal/experiments"
)

const sweepBody = `{"param":"width","benches":["gzip"],"values":[2,4,6,8]}`

// postNDJSON runs one sweep request with the streaming Accept header.
func postNDJSON(s *Server, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	req.Header.Set("Accept", ndjsonContentType)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// parseStream splits an NDJSON sweep body into its point rows and the
// trailer row.
func parseStream(t *testing.T, body string) ([]experiments.SweepPoint, SweepTrailer) {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream has %d rows, want points plus a trailer:\n%s", len(lines), body)
	}
	points := make([]experiments.SweepPoint, 0, len(lines)-1)
	for _, line := range lines[:len(lines)-1] {
		var pt experiments.SweepPoint
		if err := json.Unmarshal([]byte(line), &pt); err != nil {
			t.Fatalf("bad point row %q: %v", line, err)
		}
		points = append(points, pt)
	}
	var trailer SweepTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("bad trailer row %q: %v", lines[len(lines)-1], err)
	}
	return points, trailer
}

// TestStreamedSweepMatchesBuffered pins the equivalence contract: the
// streamed rows carry exactly the information of the buffered response —
// reassembling them reproduces the buffered body byte for byte.
func TestStreamedSweepMatchesBuffered(t *testing.T) {
	s := testServer(Config{})

	buffered := post(s, "/v1/sweep", sweepBody)
	if buffered.Code != http.StatusOK {
		t.Fatalf("buffered sweep: status = %d\nbody: %s", buffered.Code, buffered.Body.String())
	}

	streamed := postNDJSON(s, sweepBody)
	if streamed.Code != http.StatusOK {
		t.Fatalf("streamed sweep: status = %d\nbody: %s", streamed.Code, streamed.Body.String())
	}
	if got := streamed.Header().Get("Content-Type"); got != ndjsonContentType {
		t.Errorf("streamed Content-Type = %q, want %q", got, ndjsonContentType)
	}
	if !streamed.Flushed {
		t.Errorf("streamed response was never flushed")
	}

	points, trailer := parseStream(t, streamed.Body.String())
	if len(points) != 4 {
		t.Fatalf("streamed %d points, want 4", len(points))
	}
	rebuilt, err := EncodeIndented(SweepResponse{
		SweepResult: &experiments.SweepResult{
			Title:      trailer.Title,
			Param:      trailer.Param,
			Points:     points,
			MeanAbsErr: trailer.MeanAbsErr,
		},
		Render: trailer.Render,
		CSV:    trailer.CSV,
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(rebuilt) != buffered.Body.String() {
		t.Errorf("reassembled stream differs from buffered response\nstream:\n%s\nbuffered:\n%s",
			rebuilt, buffered.Body.String())
	}
}

// disconnectWriter is a ResponseWriter that drops the client after the
// first complete NDJSON row reaches it.
type disconnectWriter struct {
	header http.Header
	cancel context.CancelFunc
	mu     sync.Mutex
	rows   int
	flushs int
}

func (w *disconnectWriter) Header() http.Header { return w.header }
func (w *disconnectWriter) WriteHeader(int)     {}
func (w *disconnectWriter) Flush() {
	w.mu.Lock()
	w.flushs++
	w.mu.Unlock()
}
func (w *disconnectWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rows += strings.Count(string(p), "\n")
	if w.rows >= 1 {
		w.cancel()
	}
	return len(p), nil
}

// TestStreamedSweepDisconnectStopsCells pins streamed cancellation: a
// client that vanishes mid-stream stops the remaining grid cells — the
// suite's simulator counter shows only the cells that ran before the
// disconnect, not the full grid.
func TestStreamedSweepDisconnectStopsCells(t *testing.T) {
	s := testServer(Config{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(sweepBody)).WithContext(ctx)
	req.Header.Set("Accept", ndjsonContentType)
	w := &disconnectWriter{header: make(http.Header), cancel: cancel}
	s.Handler().ServeHTTP(w, req)

	if w.rows != 1 {
		t.Errorf("rows after disconnect = %d, want 1", w.rows)
	}
	if w.flushs == 0 {
		t.Errorf("streamed rows were not flushed")
	}
	_, sims := s.suite.CounterSources()
	if got := sims.Load(); got >= 4 || got < 1 {
		t.Errorf("simulator runs after disconnect = %d, want at least 1 but fewer than the 4-cell grid", got)
	}
}

// TestStreamedSweepPanicIs500 pins the streamed panic net: a panic
// before the first row leaves becomes a structured 500, not a severed
// connection.
func TestStreamedSweepPanicIs500(t *testing.T) {
	s := testServer(Config{})
	s.panicHook = func(string) { panic("injected stream failure") }
	rec := postNDJSON(s, sweepBody)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500\nbody: %s", rec.Code, rec.Body.String())
	}
	if msg := errorBody(t, rec); !strings.Contains(msg, "internal panic") ||
		!strings.Contains(msg, "injected stream failure") {
		t.Errorf("error %q should name the panic", msg)
	}

	// The server survives: the same sweep succeeds once the fault is gone.
	s.panicHook = nil
	if rec := postNDJSON(s, sweepBody); rec.Code != http.StatusOK {
		t.Errorf("sweep after panic: status = %d, want 200", rec.Code)
	}
}

// TestBufferedSweepPanicIs500 pins the pooled-worker panic contract on
// the buffered path: the panic surfaces as a structured 500 through the
// response cache's compute guard, waiters are not stranded, and the
// failure is not cached.
func TestBufferedSweepPanicIs500(t *testing.T) {
	s := testServer(Config{})
	s.panicHook = func(string) { panic("injected sweep failure") }
	rec := post(s, "/v1/sweep", sweepBody)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500\nbody: %s", rec.Code, rec.Body.String())
	}
	if msg := errorBody(t, rec); !strings.Contains(msg, "internal panic") {
		t.Errorf("error %q should name the panic", msg)
	}

	s.panicHook = nil
	retry := post(s, "/v1/sweep", sweepBody)
	if retry.Code != http.StatusOK {
		t.Errorf("sweep after panic: status = %d, want 200", retry.Code)
	}
	if got := retry.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("retry X-Cache = %q, want miss (panic outcome must not be cached)", got)
	}
}
