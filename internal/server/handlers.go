package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"fomodel/internal/experiments"
	"fomodel/internal/reqkey"
	"fomodel/internal/workload"
)

// Request sizes are bounded: every valid request body is a small JSON
// object, so anything bigger is rejected before decoding.
const maxBodyBytes = 1 << 16

// Instruction-count bounds per request, keeping a single request's
// memory and CPU within reason.
const (
	minTraceLen = 1000
	maxTraceLen = 5_000_000
)

// statusError is a request-decoding failure that dictates its own HTTP
// status (e.g. 413 for an oversized body); plain errors map to 400.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// writeRequestError writes a decoding failure with its proper status:
// the statusError's own code when it carries one, 400 otherwise.
func (s *Server) writeRequestError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	var se *statusError
	if errors.As(err, &se) {
		code = se.code
	}
	s.writeError(w, code, "%s", err)
}

// decodeRequest parses a JSON request body strictly (unknown fields are
// errors, as is trailing garbage).
func decodeRequest(r *http.Request, v any) error {
	return decodeRequestLimit(r, v, maxBodyBytes)
}

// decodeRequestLimit is decodeRequest with an explicit body bound;
// /v1/batch allows a larger body than the single-object endpoints. A
// body over the bound is an explicit 413 naming the limit — never a
// silent truncation misreported as malformed JSON.
func decodeRequestLimit(r *http.Request, v any, limit int64) error {
	// Read the whole (bounded) body first: an over-limit body must
	// always surface as a 413, even when its prefix happens to parse.
	raw, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &statusError{
				code: http.StatusRequestEntityTooLarge,
				msg:  fmt.Sprintf("request body exceeds the %d-byte limit", limit),
			}
		}
		return fmt.Errorf("invalid request body: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid request body: trailing data after the JSON object")
	}
	return nil
}

// EncodeIndented marshals v exactly the way the CLI's -json mode does
// (two-space indent, trailing newline), preserving byte equivalence
// between a server response and the corresponding CLI output. The
// fomodelproxy router uses the same encoder to reassemble split batch
// responses, which is what keeps them byte-equal to a single daemon's.
func EncodeIndented(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// PredictRequest asks for one workload's CPI stack on one machine.
type PredictRequest struct {
	// Bench names the workload profile.
	Bench string `json:"bench"`
	// N and Seed override the server's trace defaults when positive.
	N    int    `json:"n,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	// Machine overrides baseline machine parameters.
	Machine MachineSpec `json:"machine,omitempty"`
	// BranchMode selects the branch penalty derivation
	// (midpoint|isolated|measured; default midpoint).
	BranchMode string `json:"branch_mode,omitempty"`
	// Sim additionally runs the detailed simulator and reports its CPI.
	Sim bool `json:"sim,omitempty"`
	// Content is the registered workload's profile content hash, filled
	// during normalization when Bench names a registered custom
	// workload (empty for built-ins, which keeps their canonical keys
	// byte-identical to pre-registry servers). Client-supplied values
	// are overwritten, so a forged hash can never pin a request to a
	// stale cache entry.
	Content string `json:"content,omitempty"`
}

// Normalize fills defaults and validates, returning an error fit for a
// 400 response. It is idempotent, and it is the shared canonicalization
// step: the daemon normalizes before keying its response cache, and the
// fomodelproxy router normalizes (via PredictCacheKey) before hashing
// onto the ring. Names that are not built-in profiles resolve through
// d.Resolver (the daemon's workload registry, or the router's mirror of
// it); the resolved content hash lands in req.Content, making the
// registered profile's content part of the canonical key.
func (req *PredictRequest) Normalize(d reqkey.Defaults) error {
	if req.N == 0 {
		req.N = d.N
	}
	if req.Seed == 0 {
		req.Seed = d.Seed
	}
	if req.BranchMode == "" {
		req.BranchMode = "midpoint"
	}
	req.Content = ""
	if _, err := workload.ByName(req.Bench); err != nil {
		hash := ""
		ok := false
		if d.Resolver != nil {
			hash, ok = d.Resolver.WorkloadContent(req.Bench)
		}
		if !ok {
			return err
		}
		req.Content = hash
	}
	if req.N < minTraceLen || req.N > maxTraceLen {
		return fmt.Errorf("n %d outside [%d, %d]", req.N, minTraceLen, maxTraceLen)
	}
	return nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	sw := w.(*statusWriter)
	var req PredictRequest
	if err := decodeRequest(r, &req); err != nil {
		s.writeRequestError(w, err)
		return
	}
	if err := req.Normalize(s.cfg.KeyDefaults()); err != nil {
		s.writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	mode, err := ParseBranchMode(req.BranchMode)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	machine, err := req.Machine.Machine()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	ucfg, err := req.Machine.SimConfig()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	// Reject structurally invalid machines up front, so configuration
	// mistakes are 400s and only genuine computation failures become 500s.
	if err := machine.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	if err := ucfg.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "%s", err)
		return
	}

	key, err := PredictCacheKey(req, s.cfg.KeyDefaults())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%s", err)
		return
	}
	ctx := r.Context()
	status, body, hit, err := s.cache.Do(key, func() (int, []byte, error) {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		rec, err := s.predictRecord(req, machine, ucfg, mode)
		if err != nil {
			return 0, nil, err
		}
		body, err := EncodeIndented(rec)
		if err != nil {
			return 0, nil, err
		}
		return http.StatusOK, body, nil
	})
	s.noteRegisteredUse(req.Bench, hit)
	s.finishCompute(sw, status, body, hit, err)
}

// SweepResponse is the /v1/sweep body: the structured sweep points plus
// the rendered table and CSV, byte-identical to what cmd/experiments
// prints for the same sweep.
type SweepResponse struct {
	*experiments.SweepResult
	Render string `json:"render"`
	CSV    string `json:"csv"`
}

// SweepTrailer is the final row of a streamed (NDJSON) sweep: everything
// the buffered SweepResponse carries except the points, which were
// already streamed one row per grid cell. Reassembling the rows into a
// SweepResponse reproduces the buffered body byte for byte (pinned by
// tests).
type SweepTrailer struct {
	Title      string  `json:"title"`
	Param      string  `json:"param"`
	MeanAbsErr float64 `json:"mean_abs_err"`
	Render     string  `json:"render"`
	CSV        string  `json:"csv"`
}

// ndjsonContentType is the streamed sweep's media type; requests opt in
// by listing it in the Accept header.
const ndjsonContentType = "application/x-ndjson"

// wantsNDJSON reports whether the request asked for a streamed sweep.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), ndjsonContentType)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	sw := w.(*statusWriter)
	var spec experiments.SweepSpec
	if err := decodeRequest(r, &spec); err != nil {
		s.writeRequestError(w, err)
		return
	}
	if err := spec.ValidateFor(s.suite); err != nil {
		s.writeError(w, http.StatusBadRequest, "%s", err)
		return
	}
	if cells := len(spec.Benches) * len(spec.Values); cells > 256 {
		s.writeError(w, http.StatusBadRequest, "sweep grid of %d cells exceeds the 256-cell limit", cells)
		return
	}
	if wantsNDJSON(r) {
		s.streamSweep(sw, r, spec)
		return
	}
	key, err := SweepCacheKey(spec, s.cfg.KeyDefaults())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%s", err)
		return
	}
	ctx := r.Context()
	status, body, hit, err := s.cache.Do(key, func() (int, []byte, error) {
		if s.panicHook != nil {
			s.panicHook(spec.Param)
		}
		res, err := experiments.Sweep(ctx, s.suite, spec)
		if err != nil {
			return 0, nil, err
		}
		body, err := EncodeIndented(SweepResponse{
			SweepResult: res,
			Render:      res.Render(),
			CSV:         res.CSV(),
		})
		if err != nil {
			return 0, nil, err
		}
		return http.StatusOK, body, nil
	})
	s.finishCompute(sw, status, body, hit, err)
}

// streamSweep is the NDJSON sweep mode: one compact SweepPoint row per
// grid cell, flushed as the cell completes, then one SweepTrailer row
// with the sweep-level fields. Streamed responses bypass the response
// cache (rows leave before the result exists) but still share the
// suite's workload and prep caches. A client disconnect cancels the
// remaining grid cells through the request context; a failure after the
// first row has been sent is reported as a final {"error": ...} row,
// since the 200 header is already on the wire.
func (s *Server) streamSweep(sw *statusWriter, r *http.Request, spec experiments.SweepSpec) {
	ctx := r.Context()
	wroteRow := false
	writeRow := func(v any) error {
		row, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !wroteRow {
			sw.Header().Set("Content-Type", ndjsonContentType)
			sw.WriteHeader(http.StatusOK)
			wroteRow = true
		}
		if _, err := sw.Write(append(row, '\n')); err != nil {
			return err
		}
		sw.Flush()
		return nil
	}
	res, err := func() (res *experiments.SweepResult, err error) {
		// The streamed path runs outside the response cache, so it needs
		// its own panic net: worker panics arrive here as PanicError via
		// the engine's guard, and this recover catches the handler
		// goroutine itself, turning both into a structured error instead
		// of a severed connection.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("internal panic: %v", r)
			}
		}()
		if s.panicHook != nil {
			s.panicHook(spec.Param)
		}
		return experiments.SweepStream(ctx, s.suite, spec, func(pt experiments.SweepPoint) error {
			return writeRow(pt)
		})
	}()
	if err != nil {
		if !wroteRow {
			// Nothing sent yet: fail the request with its real status.
			s.finishCompute(sw, 0, nil, false, err)
			return
		}
		if ctx.Err() == nil {
			// Mid-stream failure with a live client: the status line is
			// gone, so the error travels as the final row.
			//folint:allow(errdrop) final error row on a dying stream; a failed write means the client is gone too
			writeRow(errorResponse{Error: err.Error()})
		}
		return
	}
	writeRow(SweepTrailer{ //folint:allow(errdrop) trailer ends the stream; a failed write means the client is gone and there is nothing left to send
		Title:      res.Title,
		Param:      res.Param,
		MeanAbsErr: res.MeanAbsErr,
		Render:     res.Render(),
		CSV:        res.CSV(),
	})
}

// WorkloadInfo is one benchmark's model-facing trace statistics, as
// reported by /v1/workloads.
type WorkloadInfo struct {
	Name         string  `json:"name"`
	Instructions int     `json:"instructions"`
	Alpha        float64 `json:"alpha"`
	Beta         float64 `json:"beta"`
	R2           float64 `json:"r2"`
	AvgLatency   float64 `json:"avg_latency"`
	// BranchesPerInstr and MispredictRate describe the branch behaviour;
	// the *PerKI rates are miss events per thousand instructions.
	BranchesPerInstr float64 `json:"branches_per_instr"`
	MispredictRate   float64 `json:"mispredict_rate"`
	ICacheShortPerKI float64 `json:"icache_short_per_ki"`
	ICacheLongPerKI  float64 `json:"icache_long_per_ki"`
	DCacheShortPerKI float64 `json:"dcache_short_per_ki"`
	DCacheLongPerKI  float64 `json:"dcache_long_per_ki"`
	OverlapFactor    float64 `json:"overlap_factor"`
}

// WorkloadsResponse is the /v1/workloads body.
type WorkloadsResponse struct {
	N         int            `json:"n"`
	Seed      uint64         `json:"seed"`
	Workloads []WorkloadInfo `json:"workloads"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	sw := w.(*statusWriter)
	status, body, hit, err := s.cache.Do(WorkloadsCacheKey, func() (int, []byte, error) {
		infos, err := experiments.MapWorkloads(s.suite, func(wl *experiments.Workload) (WorkloadInfo, error) {
			sum := wl.Summary
			ki := float64(sum.Instructions) / 1000
			return WorkloadInfo{
				Name:             wl.Name,
				Instructions:     sum.Instructions,
				Alpha:            wl.Law.Alpha,
				Beta:             wl.Law.Beta,
				R2:               wl.Law.R2,
				AvgLatency:       sum.AvgLatency,
				BranchesPerInstr: float64(sum.Branches) / float64(sum.Instructions),
				MispredictRate:   sum.MispredictRate(),
				ICacheShortPerKI: float64(sum.ICacheShort) / ki,
				ICacheLongPerKI:  float64(sum.ICacheLong) / ki,
				DCacheShortPerKI: float64(sum.DCacheShort) / ki,
				DCacheLongPerKI:  float64(sum.DCacheLong) / ki,
				OverlapFactor:    sum.OverlapFactor(),
			}, nil
		})
		if err != nil {
			return 0, nil, err
		}
		body, err := EncodeIndented(WorkloadsResponse{N: s.cfg.N, Seed: s.cfg.Seed, Workloads: infos})
		if err != nil {
			return 0, nil, err
		}
		return http.StatusOK, body, nil
	})
	s.finishCompute(sw, status, body, hit, err)
}
