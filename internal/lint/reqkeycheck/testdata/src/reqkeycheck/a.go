// Fixture for the reqkeycheck analyzer, loaded under the server
// import path (one side of the daemon/proxy key contract).
package server

import (
	"fmt"
	"strings"

	"fomodel/internal/reqkey"
)

type cache struct{}

func (c *cache) insert(key string, v any)     {}
func (c *cache) lookup(cacheKey string) any   { return nil }
func (c *cache) evict(n int)                  {}
func route(replicas []string, key string) int { return len(key) % len(replicas) }

func canonicalIsTheWay(endpoint string, v any) (string, error) {
	return reqkey.Canonical(endpoint, v)
}

func sprintfKey(bench string, n int) {
	key := fmt.Sprintf("%s-%d", bench, n) // want `hand-rolled key via fmt\.Sprintf assigned to key`
	var c cache
	c.insert(key, nil)
}

func concatArg(c *cache, bench string) {
	c.insert("predict:"+bench, nil) // want `hand-rolled key via string concatenation passed as key to insert`
}

func joinArg(c *cache, parts []string) {
	c.lookup(strings.Join(parts, "\x00")) // want `hand-rolled key via strings\.Join passed as cacheKey to lookup`
}

func routeArg(replicas []string, bench string, n int) int {
	return route(replicas, fmt.Sprintf("%s/%d", bench, n)) // want `hand-rolled key via fmt\.Sprintf passed as key to route`
}

func SweepRouteKey(bench string, n int) string {
	if n > 0 {
		return fmt.Sprintf("%s:%d", bench, n) // want `hand-rolled key via fmt\.Sprintf returned from SweepRouteKey`
	}
	return bench + ":sweep" // want `hand-rolled key via string concatenation returned from SweepRouteKey`
}

type routedRequest struct{ cacheKey string }

func fieldInit(bench string) routedRequest {
	return routedRequest{cacheKey: "r-" + bench} // want `hand-rolled key via string concatenation stored in field cacheKey`
}

const workloadsKey = "workloads"

func constantsAreFormattingNotDerivation() string {
	key := "sweep" + ":" + "all"
	return key
}

func passThroughIsFine(c *cache, k string) {
	c.insert(k, nil)
}

func errorMessagesAreNotKeys(bench string) error {
	return fmt.Errorf("unknown bench %q", bench)
}

func nonKeyPositionsIgnored(bench string, n int) string {
	label := fmt.Sprintf("%s-%d", bench, n)
	return label
}
