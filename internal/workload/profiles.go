package workload

import (
	"fmt"
	"sort"

	"fomodel/internal/isa"
)

// The twelve SPECint2000-like profiles. Each profile is tuned so that the
// trace statistics the first-order model consumes land where the paper
// reports them (see DESIGN.md §2): Table 1's spread of power-law exponents
// (vortex high beta, vpr low beta and high latency), gzip's branch-bound
// behaviour, mcf's and twolf's dominance by clustered long data-cache
// misses, and gcc/perl/vortex's instruction-cache pressure.
//
// Region sizes are chosen against the baseline hierarchy (4 KB 4-way L1s,
// 512 KB L2, 128 B lines): the hot region fits comfortably in L1, the warm
// region fits in L2 but not L1, and the cold region is streamed through with
// a full-line stride so that every cold access is a long (L2) miss.

// mix builds a Mix array from non-branch class weights.
func mix(alu, mul, div, fpu, load, store float64) [isa.NumClasses]float64 {
	var m [isa.NumClasses]float64
	m[isa.ALU] = alu
	m[isa.Mul] = mul
	m[isa.Div] = div
	m[isa.FPU] = fpu
	m[isa.Load] = load
	m[isa.Store] = store
	return m
}

// baseProfile carries the defaults shared by most integer benchmarks;
// individual profiles override what makes them distinctive.
func baseProfile(name string) Profile {
	return Profile{
		Name:           name,
		Mix:            mix(0.42, 0.08, 0.012, 0.02, 0.30, 0.17),
		BlockLenMean:   5,
		NumBlocks:      600,
		HotBlocks:      28,
		HotJumpFrac:    0.95,
		EscapeFrac:     0.01,
		HardBranchFrac: 0.08,
		HardTakenProb:  0.5,
		EasyBiasLo:     0.93,
		EasyBiasHi:     0.995,
		EasyTakenFrac:  0.55,
		NoDepFrac:      0.25,
		DepShortFrac:   0.60,
		DepShortMean:   3,
		DepLongAlpha:   0.7,
		DepLongMax:     200,
		TwoSrcFrac:     0.45,
		DataHotSize:    2 << 10,
		DataWarmSize:   64 << 10,
		DataColdSize:   64 << 20,
		DataHotFrac:    0.955,
		DataWarmFrac:   0.040,
		ColdBurstMean:  1.3,
		ColdStride:     128,
	}
}

// Profiles returns the twelve synthetic SPECint2000-like profiles in
// alphabetical order.
func Profiles() []Profile {
	ps := []Profile{
		bzip2Profile(),
		craftyProfile(),
		eonProfile(),
		gapProfile(),
		gccProfile(),
		gzipProfile(),
		mcfProfile(),
		parserProfile(),
		perlProfile(),
		twolfProfile(),
		vortexProfile(),
		vprProfile(),
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

// Names returns the profile names in alphabetical order.
func Names() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i := range ps {
		names[i] = ps[i].Name
	}
	return names
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q (known: %v)", name, Names())
}

// bzip2: compression with moderate ILP, tiny code, modest data misses.
func bzip2Profile() Profile {
	p := baseProfile("bzip")
	p.HardBranchFrac = 0.03
	p.DataHotFrac = 0.9388
	p.DataWarmFrac = 0.058
	p.ColdBurstMean = 1.4
	return p
}

// crafty: chess; branchy with bit-board ALU work, larger code.
func craftyProfile() Profile {
	p := baseProfile("crafty")
	p.Mix = mix(0.50, 0.07, 0.01, 0.01, 0.27, 0.15)
	p.NumBlocks = 2200
	p.HotBlocks = 40
	p.HotJumpFrac = 0.90
	p.EscapeFrac = 0.01
	p.HardBranchFrac = 0.05
	p.DataHotFrac = 0.9845
	p.DataWarmFrac = 0.015
	return p
}

// eon: the one C++/graphics-flavoured benchmark — more FP, longer blocks,
// highly predictable branches, mid-size code.
func eonProfile() Profile {
	p := baseProfile("eon")
	p.Mix = mix(0.36, 0.09, 0.015, 0.12, 0.27, 0.15)
	p.BlockLenMean = 7
	p.NumBlocks = 1800
	p.HotBlocks = 36
	p.HotJumpFrac = 0.92
	p.EscapeFrac = 0.01
	p.HardBranchFrac = 0.005
	p.NoDepFrac = 0.30
	p.DepShortFrac = 0.50
	p.DataHotFrac = 0.9843
	p.DataWarmFrac = 0.0152
	return p
}

// gap: group theory; long predictable loops over L2-resident sets.
func gapProfile() Profile {
	p := baseProfile("gap")
	p.BlockLenMean = 6.5
	p.HardBranchFrac = 0.01
	p.NoDepFrac = 0.28
	p.DepShortFrac = 0.55
	p.DataHotFrac = 0.875
	p.DataWarmFrac = 0.12
	p.DataWarmSize = 128 << 10
	p.ColdBurstMean = 1.4
	return p
}

// gcc: huge code footprint (the classic I-cache stresser), moderate
// branch behaviour, some cold data.
func gccProfile() Profile {
	p := baseProfile("gcc")
	p.NumBlocks = 9000
	p.HotBlocks = 64
	p.HotJumpFrac = 0.52
	p.EasyTakenFrac = 0.75
	p.EscapeFrac = 0.01
	p.HardBranchFrac = 0.05
	p.DataHotFrac = 0.9580
	p.DataWarmFrac = 0.04
	p.ColdBurstMean = 1.2
	return p
}

// gzip: tiny code, hot data, but hard-to-predict branches — the paper's
// branch-misprediction-dominated benchmark.
func gzipProfile() Profile {
	p := baseProfile("gzip")
	p.NumBlocks = 300
	p.HotBlocks = 20
	p.HotJumpFrac = 0.97
	p.EscapeFrac = 0.005
	p.HardBranchFrac = 0.20
	p.DataHotFrac = 0.9592
	p.DataWarmFrac = 0.04
	return p
}

// mcf: pointer-chasing over a graph far larger than L2 — long data-cache
// misses in dense bursts dominate (≈70% of CPI in the paper).
func mcfProfile() Profile {
	p := baseProfile("mcf")
	p.Mix = mix(0.38, 0.05, 0.008, 0.01, 0.37, 0.18)
	p.NumBlocks = 260
	p.HotBlocks = 18
	p.HotJumpFrac = 0.97
	p.EscapeFrac = 0.01
	p.HardBranchFrac = 0.05
	p.DepShortFrac = 0.70
	p.DepShortMean = 2.5
	p.DataHotFrac = 0.826
	p.DataWarmFrac = 0.16
	p.DataColdSize = 512 << 20
	p.ColdBurstMean = 1.4
	return p
}

// parser: dictionary walking; mid everything with some cold misses.
func parserProfile() Profile {
	p := baseProfile("parser")
	p.NumBlocks = 1400
	p.HotBlocks = 36
	p.HardBranchFrac = 0.04
	p.DataHotFrac = 0.9353
	p.DataWarmFrac = 0.06
	p.ColdBurstMean = 1.2
	return p
}

// perl: interpreter dispatch — large code, big warm data, moderate
// branches.
func perlProfile() Profile {
	p := baseProfile("perl")
	p.NumBlocks = 7000
	p.HotBlocks = 56
	p.HotJumpFrac = 0.55
	p.EasyTakenFrac = 0.75
	p.EscapeFrac = 0.01
	p.HardBranchFrac = 0.05
	p.DataHotFrac = 0.9390
	p.DataWarmFrac = 0.06
	return p
}

// twolf: place-and-route; long-latency arithmetic plus clustered long
// misses (≈60% of CPI in the paper) and poor branches.
func twolfProfile() Profile {
	p := baseProfile("twolf")
	p.Mix = mix(0.36, 0.12, 0.03, 0.06, 0.28, 0.15)
	p.NumBlocks = 500
	p.HotBlocks = 26
	p.HardBranchFrac = 0.15
	p.DepShortFrac = 0.68
	p.DepShortMean = 2.5
	p.DataHotFrac = 0.8707
	p.DataWarmFrac = 0.12
	p.DataColdSize = 256 << 20
	p.ColdBurstMean = 1.4
	return p
}

// vortex: OO database — the paper's high-ILP outlier (beta ≈ 0.7) with a
// large code footprint and predictable branches.
func vortexProfile() Profile {
	p := baseProfile("vortex")
	p.Mix = mix(0.44, 0.07, 0.01, 0.015, 0.29, 0.185)
	p.NumBlocks = 11000
	p.HotBlocks = 72
	p.HotJumpFrac = 0.48
	p.EasyTakenFrac = 0.85
	p.EscapeFrac = 0.01
	p.HardBranchFrac = 0.01
	p.EasyBiasLo = 0.96
	p.NoDepFrac = 0.38
	p.DepShortFrac = 0.30
	p.DepShortMean = 4
	p.DepLongAlpha = 0.5
	p.TwoSrcFrac = 0.35
	p.DataHotFrac = 0.9548
	p.DataWarmFrac = 0.044
	return p
}

// vpr: the paper's low-ILP outlier — tight dependence chains (beta ≈ 0.3)
// and high average latency (≈2.2 cycles) from mul/div/FP content.
func vprProfile() Profile {
	p := baseProfile("vpr")
	p.Mix = mix(0.26, 0.16, 0.055, 0.10, 0.27, 0.155)
	p.NumBlocks = 700
	p.HotBlocks = 30
	p.HardBranchFrac = 0.06
	p.NoDepFrac = 0.12
	p.DepShortFrac = 0.92
	p.DepShortMean = 2.2
	p.DepLongAlpha = 1.2
	p.TwoSrcFrac = 0.60
	p.DataHotFrac = 0.9261
	p.DataWarmFrac = 0.068
	p.ColdBurstMean = 1.4
	return p
}
