#!/usr/bin/env bash
# bench.sh — run the suite's benchmarks and record ns/op + allocs/op.
#
# Usage: scripts/bench.sh [output.json]   # library/experiment benchmarks
#        scripts/bench.sh server [output] # fomodeld load benchmark
#        scripts/bench.sh proxy [output]  # fomodelproxy multi-process benchmark
#        scripts/bench.sh optimize [out]  # /v1/optimize search benchmark
#
# Library mode runs two stages: a -benchtime=1x smoke pass over every
# benchmark in the repo (so a broken benchmark fails fast without a long
# timed run), then timed passes over the experiment-level acceptance
# benchmarks and the simulator/analyzer micro-benchmarks. Results land
# in BENCH_PR2.json (or the given path) keyed by benchmark name, with
# the pre-PR-2 baseline and computed speedups for the two acceptance
# benchmarks.
#
# Server mode drives the fomodeld handler chain end to end — cache-hot
# and cache-cold /v1/predict, the cold-start-after-warm path (a fresh
# server per request on a warm artifact store), plus a 12-cell /v1/sweep
# at 1 worker and at GOMAXPROCS workers — and records req/sec and the
# cold/hot ratios in BENCH_PR6.json.
#
# Optimize mode is the PR-9 benchmark: a real fomodeld evaluates the
# convex width × window search the optimize tests pin, and the report
# records how many model evaluations the guided search spent against the
# naive full-grid count, plus the evaluation-level predict-cache hit
# rate when a second search covers the same lattice. It then re-measures
# the sweep parallel speedup and the proxied fleet throughput at the
# host's GOMAXPROCS, so the PR-9 numbers carry their own cpus/gomaxprocs
# provenance instead of pointing at older bench files.
#
# Proxy mode is the PR-7 benchmark: real OS processes (3 fomodeld
# replicas, one fomodelproxy, the fomodelload generator) on loopback.
# The replicas run deliberately small response caches (16 entries)
# against a 24-key working set, so the cache-locality effect of
# consistent-hash routing is measured directly: the sharded fleet's
# partitions fit their caches while round-robin cycles every key
# through every replica and thrashes. Phases: single-daemon hot
# ceiling, hash-routed fleet, round-robin fleet, and a kill-one-replica
# failover run that must lose zero requests and re-admit the replica
# after /readyz turns healthy. Every bench JSON records gomaxprocs and
# cpus so a single-CPU result can never masquerade as a scaling one.
set -euo pipefail
cd "$(dirname "$0")/.."

gomaxprocs=${GOMAXPROCS:-$(nproc)}

if [ "${1:-}" = "optimize" ]; then
    out=${2:-BENCH_PR9.json}
    n=${N:-20000}
    dur=${DUR:-3s}
    conc=${CONC:-6}

    bin=$(mktemp -d)
    pids=()
    cleanup() {
        for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
        wait 2>/dev/null || true
        rm -rf "$bin"
    }
    trap cleanup EXIT

    echo "== build" >&2
    go build -o "$bin/fomodeld" ./cmd/fomodeld
    go build -o "$bin/fomodelproxy" ./cmd/fomodelproxy
    go build -o "$bin/fomodelload" ./cmd/fomodelload

    wait_ready() {
        for _ in $(seq 1 200); do
            if curl -fsS "$1/readyz" >/dev/null 2>&1; then return 0; fi
            sleep 0.1
        done
        echo "endpoint never became ready: $1" >&2
        return 1
    }
    jget() { sed -n "s/^  \"$2\": \([0-9.]*\),*$/\1/p" "$1"; }
    mget() { curl -fsS "$2/metrics" | sed -n "s/^$1 //p"; }

    echo "== boot daemon" >&2
    "$bin/fomodeld" -addr 127.0.0.1:8796 -n "$n" -warm=false >"$bin/daemon.log" 2>&1 &
    pids+=($!)
    daemon=http://127.0.0.1:8796
    wait_ready "$daemon"

    # The convex search space the acceptance test pins: 16 widths x 16
    # window sizes (rob fixed at 256 so every lattice point is valid),
    # naive grid = 256 candidates. A full budget lets the search stop on
    # its own convergence, so evaluations/grid_size is the honest
    # guided-vs-naive ratio.
    spec='{"workloads":[{"bench":"gzip"}],"bounds":{"width":{"min":1,"max":16},"window":{"min":8,"max":128,"step":8},"rob":{"min":256,"max":256}},"budget":256,"n":'$n'}'

    echo "== phase 1: guided search vs naive grid" >&2
    t0=$(date +%s.%N)
    curl -fsS -X POST -H 'Content-Type: application/json' -d "$spec" \
        "$daemon/v1/optimize" >"$bin/opt1.json"
    t1=$(date +%s.%N)
    evals=$(jget "$bin/opt1.json" evaluations)
    grid=$(jget "$bin/opt1.json" grid_size)
    rounds=$(jget "$bin/opt1.json" rounds)
    e1=$(mget fomodeld_optimize_evaluations_total "$daemon")
    h1=$(mget fomodeld_optimize_evaluation_cache_hits_total "$daemon")

    echo "== phase 2: second search over the same lattice (cache-hot)" >&2
    # A different budget spells a different response-cache key, so the
    # search itself re-runs — but every candidate x workload evaluation
    # should land in the predict response cache the first search warmed.
    spec2=${spec/\"budget\":256/\"budget\":255}
    t2=$(date +%s.%N)
    curl -fsS -X POST -H 'Content-Type: application/json' -d "$spec2" \
        "$daemon/v1/optimize" >"$bin/opt2.json"
    t3=$(date +%s.%N)
    e2=$(mget fomodeld_optimize_evaluations_total "$daemon")
    h2=$(mget fomodeld_optimize_evaluation_cache_hits_total "$daemon")
    stop_bench_daemon() {
        for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
        wait 2>/dev/null || true
        pids=()
    }
    stop_bench_daemon

    echo "== phase 3: sweep parallelism at GOMAXPROCS=$gomaxprocs" >&2
    go test -run '^$' -bench 'BenchmarkSweepWorkers1$|BenchmarkSweepWorkersN$' \
        -benchtime=20x ./internal/server/ >"$bin/sweep.txt"
    sweep1=$(awk '/BenchmarkSweepWorkers1/ {print $3}' "$bin/sweep.txt")
    sweepN=$(awk '/BenchmarkSweepWorkersN/ {print $3}' "$bin/sweep.txt")

    echo "== phase 4: proxied fleet throughput at GOMAXPROCS=$gomaxprocs" >&2
    for port in 8797 8798; do
        "$bin/fomodeld" -addr "127.0.0.1:$port" -n "$n" -max-inflight 64 \
            -warm=false >"$bin/replica-$port.log" 2>&1 &
        pids+=($!)
    done
    for port in 8797 8798; do wait_ready "http://127.0.0.1:$port"; done
    "$bin/fomodelproxy" -addr 127.0.0.1:8790 \
        -replicas http://127.0.0.1:8797,http://127.0.0.1:8798 \
        -route hash -hedge=false >"$bin/proxy.log" 2>&1 &
    pids+=($!)
    wait_ready http://127.0.0.1:8790
    "$bin/fomodelload" -url http://127.0.0.1:8790 -duration "$dur" \
        -concurrency "$conc" -benches 8 -robs 128,160,192 >"$bin/load.json"
    stop_bench_daemon
    proxy_rps=$(jget "$bin/load.json" req_per_sec)
    proxy_hit=$(jget "$bin/load.json" hit_rate)

    awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v procs="$(nproc)" \
        -v gmp="$gomaxprocs" -v n="$n" \
        -v evals="$evals" -v grid="$grid" -v rounds="$rounds" \
        -v cold="$(echo "$t1 $t0" | awk '{print $1-$2}')" \
        -v warm="$(echo "$t3 $t2" | awk '{print $1-$2}')" \
        -v e1="$e1" -v h1="$h1" -v e2="$e2" -v h2="$h2" \
        -v s1="$sweep1" -v sN="$sweepN" \
        -v prps="$proxy_rps" -v phit="$proxy_hit" \
        'BEGIN {
        printf "{\n"
        printf "  \"generated\": \"%s\",\n", date
        printf "  \"cpus\": %d,\n  \"gomaxprocs\": %d,\n  \"n\": %d,\n", procs, gmp, n
        printf "  \"optimize\": {\n"
        printf "    \"search\": \"convex width 1..16 x window 8..128/8, rob 256\",\n"
        printf "    \"naive_grid_evaluations\": %d,\n", grid
        printf "    \"guided_evaluations\": %d,\n", evals
        printf "    \"evaluation_fraction\": %.3f,\n", evals / grid
        printf "    \"refinement_rounds\": %d,\n", rounds
        printf "    \"cold_search_seconds\": %.2f,\n", cold
        printf "    \"cache_hot_search_seconds\": %.2f,\n", warm
        printf "    \"first_run_eval_cache_hit_rate\": %.3f,\n", (e1 > 0 ? h1 / e1 : 0)
        printf "    \"repeat_run_eval_cache_hit_rate\": %.3f\n", ((e2 - e1) > 0 ? (h2 - h1) / (e2 - e1) : 0)
        printf "  },\n"
        printf "  \"sweep_12_cells\": {\n"
        printf "    \"workers_1\": {\"ns_per_req\": %d},\n", s1
        printf "    \"workers_n\": {\"ns_per_req\": %d},\n", sN
        printf "    \"parallel_speedup\": %.2f\n  },\n", s1 / sN
        printf "  \"proxy_hash_2_replicas\": {\"req_per_sec\": %.0f, \"hit_rate\": %.3f}\n", prps, phit
        printf "}\n"
    }' > "$out"
    echo "wrote $out" >&2
    exit 0
fi

if [ "${1:-}" = "proxy" ]; then
    out=${2:-BENCH_PR7.json}
    dur=${DUR:-5s}
    conc=${CONC:-6}
    benches=8
    robs=128,160,192       # 8 benches x 3 ROBs = 24 keys
    cache=16               # per-replica response cache < keyset, > keyset/3

    bin=$(mktemp -d)
    pids=()
    cleanup() {
        for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
        wait 2>/dev/null || true
        rm -rf "$bin"
    }
    trap cleanup EXIT

    echo "== build" >&2
    go build -o "$bin/fomodeld" ./cmd/fomodeld
    go build -o "$bin/fomodelproxy" ./cmd/fomodelproxy
    go build -o "$bin/fomodelload" ./cmd/fomodelload

    wait_ready() {
        for _ in $(seq 1 200); do
            if curl -fsS "$1/readyz" >/dev/null 2>&1; then return 0; fi
            sleep 0.1
        done
        echo "endpoint never became ready: $1" >&2
        return 1
    }
    # jget file key -> bare value from fomodelload's flat JSON report
    jget() { sed -n "s/^  \"$2\": \(.*\)/\1/p" "$1" | tr -d ', "'; }

    start_replicas() {  # $1 = cache entries
        for port in 8791 8792 8793; do
            "$bin/fomodeld" -addr "127.0.0.1:$port" -cache "$1" \
                -analysis-cache "$1" -max-inflight 64 -warm=false \
                >"$bin/replica-$port.log" 2>&1 &
            pids+=($!)
        done
        for port in 8791 8792 8793; do wait_ready "http://127.0.0.1:$port"; done
    }
    stop_all() {
        for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
        wait 2>/dev/null || true
        pids=()
    }
    replicas_flag="-replicas http://127.0.0.1:8791,http://127.0.0.1:8792,http://127.0.0.1:8793"

    echo "== phase 1: single-daemon cache-hot ceiling" >&2
    "$bin/fomodeld" -addr 127.0.0.1:8791 -max-inflight 64 -warm=false \
        >"$bin/single.log" 2>&1 &
    pids+=($!)
    wait_ready http://127.0.0.1:8791
    "$bin/fomodelload" -url http://127.0.0.1:8791 -duration "$dur" \
        -concurrency "$conc" -benches $benches -robs $robs >"$bin/single.json"
    stop_all

    echo "== phase 2: hash-routed fleet, constrained caches" >&2
    start_replicas $cache
    "$bin/fomodelproxy" -addr 127.0.0.1:8790 $replicas_flag \
        -route hash -hedge=false >"$bin/proxy-hash.log" 2>&1 &
    pids+=($!)
    wait_ready http://127.0.0.1:8790
    "$bin/fomodelload" -url http://127.0.0.1:8790 -duration "$dur" \
        -concurrency "$conc" -benches $benches -robs $robs >"$bin/hash.json"
    stop_all

    echo "== phase 3: round-robin fleet, constrained caches" >&2
    start_replicas $cache
    "$bin/fomodelproxy" -addr 127.0.0.1:8790 $replicas_flag \
        -route roundrobin -hedge=false >"$bin/proxy-rr.log" 2>&1 &
    pids+=($!)
    wait_ready http://127.0.0.1:8790
    "$bin/fomodelload" -url http://127.0.0.1:8790 -duration "$dur" \
        -concurrency "$conc" -benches $benches -robs $robs >"$bin/rr.json"
    stop_all

    echo "== phase 4: kill-one-replica failover under load" >&2
    start_replicas $cache
    victim_pid=${pids[2]}      # replica on :8793
    "$bin/fomodelproxy" -addr 127.0.0.1:8790 $replicas_flag \
        -route hash -probe-interval 500ms -eject-after 2 \
        >"$bin/proxy-kill.log" 2>&1 &
    pids+=($!)
    wait_ready http://127.0.0.1:8790
    "$bin/fomodelload" -url http://127.0.0.1:8790 -duration 8s \
        -concurrency "$conc" -benches $benches -robs $robs >"$bin/kill.json" &
    load_pid=$!
    sleep 2
    kill -9 "$victim_pid" 2>/dev/null || true
    wait "$load_pid"
    # Revive the victim on the same port; the probe loop must re-admit it.
    "$bin/fomodeld" -addr 127.0.0.1:8793 -cache $cache -analysis-cache $cache \
        -max-inflight 64 -warm=false >"$bin/replica-8793b.log" 2>&1 &
    pids+=($!)
    wait_ready http://127.0.0.1:8793
    sleep 2
    healthy=$(curl -fsS http://127.0.0.1:8790/healthz | grep -o '"healthy":true' | wc -l)
    stop_all

    single_rps=$(jget "$bin/single.json" req_per_sec)
    single_hit=$(jget "$bin/single.json" hit_rate)
    hash_rps=$(jget "$bin/hash.json" req_per_sec)
    hash_hit=$(jget "$bin/hash.json" hit_rate)
    hash_err=$(jget "$bin/hash.json" errors)
    rr_rps=$(jget "$bin/rr.json" req_per_sec)
    rr_hit=$(jget "$bin/rr.json" hit_rate)
    kill_req=$(jget "$bin/kill.json" requests)
    kill_err=$(jget "$bin/kill.json" errors)

    awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v procs="$(nproc)" \
        -v gmp="$gomaxprocs" -v dur="$dur" -v conc="$conc" -v cache="$cache" \
        -v srps="$single_rps" -v shit="$single_hit" \
        -v hrps="$hash_rps" -v hhit="$hash_hit" -v herr="$hash_err" \
        -v rrps="$rr_rps" -v rhit="$rr_hit" \
        -v kreq="$kill_req" -v kerr="$kill_err" -v healthy="$healthy" \
        'BEGIN {
        printf "{\n"
        printf "  \"generated\": \"%s\",\n", date
        printf "  \"cpus\": %d,\n  \"gomaxprocs\": %d,\n", procs, gmp
        printf "  \"workload\": {\"keys\": 24, \"replica_cache_entries\": %d, \"duration\": \"%s\", \"concurrency\": %d},\n", cache, dur, conc
        printf "  \"single_daemon_hot\": {\"req_per_sec\": %.0f, \"hit_rate\": %.3f},\n", srps, shit
        printf "  \"proxy_hash\": {\"req_per_sec\": %.0f, \"hit_rate\": %.3f, \"errors\": %d},\n", hrps, hhit, herr
        printf "  \"proxy_roundrobin\": {\"req_per_sec\": %.0f, \"hit_rate\": %.3f},\n", rrps, rhit
        printf "  \"hash_hit_rate_advantage\": %.3f,\n", hhit - rhit
        printf "  \"fleet_over_single_throughput\": %.2f,\n", hrps / srps
        printf "  \"failover\": {\"requests\": %d, \"errors\": %d, \"healthy_replicas_after_restart\": %d}\n", kreq, kerr, healthy
        printf "}\n"
    }' > "$out"
    echo "wrote $out" >&2
    if [ "$kill_err" != "0" ]; then
        echo "FAILOVER REGRESSION: $kill_err requests lost during replica kill" >&2
        exit 1
    fi
    exit 0
fi

if [ "${1:-}" = "server" ]; then
    out=${2:-BENCH_PR6.json}
    tmp=$(mktemp)
    trap 'rm -f "$tmp"' EXIT
    echo "== timed: fomodeld load benchmarks" >&2
    go test -run '^$' \
        -bench 'BenchmarkPredictHot$|BenchmarkPredictCold$|BenchmarkPredictColdWarmStore$|BenchmarkSweepWorkers1$|BenchmarkSweepWorkersN$' \
        -benchmem -benchtime=20x ./internal/server/ | tee "$tmp" >&2
    awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v procs="$(nproc)" -v gmp="$gomaxprocs" '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns[name] = $3
    }
    END {
        printf "{\n  \"generated\": \"%s\",\n  \"cpus\": %d,\n  \"gomaxprocs\": %d,\n", date, procs, gmp
        printf "  \"predict\": {\n"
        printf "    \"cache_hot\":  {\"ns_per_req\": %d, \"req_per_sec\": %.0f},\n", \
            ns["BenchmarkPredictHot"], 1e9 / ns["BenchmarkPredictHot"]
        printf "    \"cache_cold\": {\"ns_per_req\": %d, \"req_per_sec\": %.1f},\n", \
            ns["BenchmarkPredictCold"], 1e9 / ns["BenchmarkPredictCold"]
        printf "    \"cold_warm_store\": {\"ns_per_req\": %d, \"req_per_sec\": %.0f},\n", \
            ns["BenchmarkPredictColdWarmStore"], 1e9 / ns["BenchmarkPredictColdWarmStore"]
        printf "    \"hot_over_cold\": %.0f,\n", \
            ns["BenchmarkPredictCold"] / ns["BenchmarkPredictHot"]
        printf "    \"warm_store_cold_over_hot\": %.1f,\n", \
            ns["BenchmarkPredictColdWarmStore"] / ns["BenchmarkPredictHot"]
        printf "    \"store_speedup_over_cold\": %.1f\n  },\n", \
            ns["BenchmarkPredictCold"] / ns["BenchmarkPredictColdWarmStore"]
        printf "  \"sweep_12_cells\": {\n"
        printf "    \"workers_1\": {\"ns_per_req\": %d},\n", ns["BenchmarkSweepWorkers1"]
        printf "    \"workers_n\": {\"ns_per_req\": %d},\n", ns["BenchmarkSweepWorkersN"]
        printf "    \"parallel_speedup\": %.2f\n  }\n}\n", \
            ns["BenchmarkSweepWorkers1"] / ns["BenchmarkSweepWorkersN"]
    }' "$tmp" > "$out"
    echo "wrote $out" >&2
    exit 0
fi

out=${1:-BENCH_PR2.json}

echo "== smoke (-benchtime=1x, all benchmarks)" >&2
go test -run '^$' -bench . -benchtime=1x ./... >/dev/null

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== timed: experiment-level (bench_test.go)" >&2
go test -run '^$' -bench 'BenchmarkFigure2$|BenchmarkROBSweep$' \
    -benchmem -benchtime=3x . | tee -a "$tmp" >&2
echo "== timed: uarch micro-benchmarks" >&2
go test -run '^$' \
    -bench 'BenchmarkSimulate$|BenchmarkPrepCacheHit$|BenchmarkPrepCacheMiss$|BenchmarkSimulateIdealSweep$' \
    -benchmem -benchtime=20x ./internal/uarch/ | tee -a "$tmp" >&2
echo "== timed: iw + stats micro-benchmarks" >&2
go test -run '^$' -bench 'BenchmarkCharacteristic' \
    -benchmem -benchtime=10x ./internal/iw/ | tee -a "$tmp" >&2
go test -run '^$' -bench 'BenchmarkAnalyze$' \
    -benchmem -benchtime=10x ./internal/stats/ | tee -a "$tmp" >&2

# Baseline ns/op, B/op, allocs/op for the acceptance benchmarks, measured
# at the pre-PR-2 tree (commit 58b301e) with the same -benchtime=3x.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v procs="$(nproc)" -v gmp="$gomaxprocs" '
/^Benchmark/ {
    name = $1
    order[++n] = name
    for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op")          ns[name] = $i
        else if ($(i+1) == "B/op")      bytes[name] = $i
        else if ($(i+1) == "allocs/op") allocs[name] = $i
    }
}
END {
    base_ns["BenchmarkFigure2"]  = 1598509701
    base_ns["BenchmarkROBSweep"] = 459931992
    base_allocs["BenchmarkFigure2"]  = 1549
    base_allocs["BenchmarkROBSweep"] = 731
    printf "{\n  \"generated\": \"%s\",\n  \"cpus\": %d,\n  \"gomaxprocs\": %d,\n  \"benchmarks\": {\n", date, procs, gmp
    for (j = 1; j <= n; j++) {
        name = order[j]
        printf "    \"%s\": {\"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}%s\n", \
            name, ns[name], bytes[name], allocs[name], (j < n ? "," : "")
    }
    printf "  },\n  \"baseline\": {\n"
    printf "    \"commit\": \"58b301e\",\n"
    k = 0
    for (name in base_ns) k++
    j = 0
    for (name in base_ns) {
        j++
        printf "    \"%s\": {\"ns_per_op\": %d, \"allocs_per_op\": %d, \"speedup\": %.2f}%s\n", \
            name, base_ns[name], base_allocs[name], base_ns[name] / ns[name], (j < k ? "," : "")
    }
    printf "  }\n}\n"
}' "$tmp" > "$out"

echo "wrote $out" >&2
