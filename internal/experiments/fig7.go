package experiments

import (
	"fmt"
	"strings"

	"fomodel/internal/isa"
	"fomodel/internal/uarch"
)

// Figure7Result measures the branch misprediction transient *empirically*
// (the paper's Fig. 7 schematic): the simulator runs a real trace twice —
// once with every miss event suppressed, once with a single injected
// misprediction — and the per-cycle issue counts diverge exactly at the
// transient: drain → ΔP refill → ramp-up. The analytic isolated penalty
// (eq. 2) is computed alongside. A single event's cost is noisy (it
// interacts with the local dependence structure); the paper models the
// average, which Fig. 9 measures.
type Figure7Result struct {
	// Bench names the trace the transient was injected into.
	Bench string
	// Clean and Dirty are the per-cycle issue counts around the injected
	// event, aligned from a few cycles before the runs diverge.
	Clean, Dirty []uint8
	// ZeroCycles is the longest zero-issue run in the dirty transient
	// (the refill gap; ≳ ΔP).
	ZeroCycles int
	// PenaltyCycles is the measured total penalty: extra cycles versus
	// the uninterrupted run.
	PenaltyCycles int64
	// AnalyticPenalty is the model's isolated penalty (eq. 2).
	AnalyticPenalty float64
	FrontEndDepth   int
}

// Figure7 injects a single misprediction into an otherwise
// miss-event-free run of gzip and observes the machine's transient.
func Figure7(s *Suite) (*Figure7Result, error) {
	const bench = "gzip"
	w, err := s.Workload(bench)
	if err != nil {
		return nil, err
	}
	t := w.Trace

	// All events clear, except one mispredicted branch near the middle.
	events := make([]uarch.Event, t.Len())
	target := -1
	for i := t.Len() / 2; i < t.Len(); i++ {
		if t.Instrs[i].Class == isa.Branch {
			target = i
			break
		}
	}
	if target < 0 {
		return nil, fmt.Errorf("experiments: no branch found in %s", bench)
	}

	cfg := s.Sim
	cfg.RecordIssueTrace = true
	clean, err := uarch.SimulateWithEvents(t, events, cfg)
	if err != nil {
		return nil, err
	}
	events[target].Mispredict = true
	dirty, err := uarch.SimulateWithEvents(t, events, cfg)
	if err != nil {
		return nil, err
	}

	res := &Figure7Result{
		Bench:         bench,
		PenaltyCycles: dirty.Cycles - clean.Cycles,
		FrontEndDepth: cfg.FrontEndDepth,
	}

	// The two runs are cycle-identical until the misprediction bites;
	// align the display window at the divergence point.
	div := -1
	for i := 0; i < len(clean.IssueTrace) && i < len(dirty.IssueTrace); i++ {
		if clean.IssueTrace[i] != dirty.IssueTrace[i] {
			div = i
			break
		}
	}
	if div < 0 {
		return nil, fmt.Errorf("experiments: injected misprediction had no effect")
	}
	lo := div - 8
	if lo < 0 {
		lo = 0
	}
	hi := div + 45
	slice := func(tr []uint8) []uint8 {
		h := hi
		if h > len(tr) {
			h = len(tr)
		}
		return append([]uint8(nil), tr[lo:h]...)
	}
	res.Clean = slice(clean.IssueTrace)
	res.Dirty = slice(dirty.IssueTrace)

	// The refill gap: longest zero-issue run within the transient.
	runLen, bestLen := 0, 0
	for _, v := range res.Dirty {
		if v == 0 {
			runLen++
			if runLen > bestLen {
				bestLen = runLen
			}
		} else {
			runLen = 0
		}
	}
	res.ZeroCycles = bestLen

	// The analytic counterpart.
	m := s.Machine
	curve := m.Curve(w.Inputs, modelOptions())
	steady := m.SteadyStateIPC(w.Inputs, modelOptions())
	res.AnalyticPenalty = curve.Drain(float64(m.WindowSize), steady) +
		float64(m.FrontEndDepth) +
		curve.RampUp(steady, transientEpsilon)
	return res, nil
}

// Render prints the measured transient next to the analytic penalty.
func (r *Figure7Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7: a single injected misprediction observed in the machine (%s)\n", r.Bench)
	fmt.Fprintf(&sb, "measured penalty %d cycles (analytic isolated estimate %.1f for the *average* event);\n",
		r.PenaltyCycles, r.AnalyticPenalty)
	fmt.Fprintf(&sb, "zero-issue refill gap %d cycles (ΔP=%d)\n", r.ZeroCycles, r.FrontEndDepth)
	row := func(label string, tr []uint8) {
		fmt.Fprintf(&sb, "%s ", label)
		for _, v := range tr {
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteByte('\n')
	}
	row("without event:", r.Clean)
	row("with event:   ", r.Dirty)
	sb.WriteString("(issue drains, goes quiet for ~ΔP while the pipeline refills, then ramps — the\npaper's Fig. 7 shape; a single event's exact cost depends on the local\ndependence structure, which is why the model targets the average)\n")
	return sb.String()
}
