package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"fomodel/internal/artifact"
	"fomodel/internal/iw"
	"fomodel/internal/stats"
	"fomodel/internal/trace"
	"fomodel/internal/workload"
)

// This file binds the experiment pipeline to the persistent artifact
// store (internal/artifact): the two expensive, deterministic
// per-benchmark preparation steps — trace generation and the analysis
// pass (IW characteristic, power-law fit, miss statistics) — are read
// from the store when a valid artifact exists and written back after a
// fresh computation. Everything here is content-keyed: a trace by its
// generation recipe (workload.ContentID), an analysis by the recipe plus
// the projection of the analysis configuration that determines its
// output. A nil store disables persistence and every function degrades
// to plain computation.

// analysisFormatVersion versions the analysis artifact payloads; part of
// every analysis key, so schema changes invalidate instead of
// misinterpreting.
const analysisFormatVersion = 1

// AnalysisArtifact bundles the derived per-trace model inputs that
// /v1/predict and the experiment suite both consume: the measured IW
// characteristic, its power-law fit, and the functional miss statistics.
// All fields are exported and gob-serializable, and gob round-trips
// float64 bits exactly, so a store-served artifact yields responses
// byte-identical to a fresh computation.
type AnalysisArtifact struct {
	Points  []iw.Point
	Law     iw.PowerLaw
	Summary *stats.Summary
}

// valid checks a decoded artifact against the trace it claims to
// describe, rejecting stale or mismatched payloads.
func (a *AnalysisArtifact) valid(t *trace.Trace, windows []int) bool {
	return a.Summary != nil &&
		a.Summary.Instructions == t.Len() &&
		len(a.Points) == len(windows)
}

// AnalysisKey builds the canonical content key of an analysis artifact:
// the trace's content identity, the window sweep, and the projection of
// the stats configuration. Pointer fields are dereferenced so the key
// reflects configuration values, never addresses.
func AnalysisKey(contentID string, windows []int, scfg stats.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "a%d|%s|w=%v|h=%+v|pb=%d|lat=%v|rob=%d|bbh=%d|warm=%t",
		analysisFormatVersion, contentID, windows, scfg.Hierarchy,
		scfg.PredictorBits, scfg.Latencies, scfg.ROBSize,
		scfg.BranchBurstHorizon, scfg.Warmup)
	if scfg.Predictor != nil {
		fmt.Fprintf(&b, "|pred=%+v", *scfg.Predictor)
	}
	if scfg.TLB != nil {
		fmt.Fprintf(&b, "|tlb=%+v", *scfg.TLB)
	}
	return b.String()
}

// LookupAnalysis returns the stored analysis bundle for a generation
// recipe without materializing its trace — the daemon's restart fast
// path: a model-only prediction needs the bundle, not the instructions.
// The content key pins the recipe (name, n, seed, generator version) and
// the store's checksum pins the bytes, so a decodable, shape-valid
// artifact is trustworthy without the trace at hand. ok is false when no
// valid artifact exists (nil store included); callers then load the
// trace and use ComputeAnalysis.
func LookupAnalysis(store *artifact.Store, contentID string, n int, windows []int, scfg stats.Config) (*AnalysisArtifact, bool) {
	if store == nil || contentID == "" {
		return nil, false
	}
	b, ok := store.Get("analysis", AnalysisKey(contentID, windows, scfg))
	if !ok {
		return nil, false
	}
	var a AnalysisArtifact
	if artifact.DecodeGob(b, &a) != nil || a.Summary == nil ||
		a.Summary.Instructions < n || len(a.Points) != len(windows) {
		return nil, false
	}
	return &a, true
}

// ComputeAnalysis returns the analysis bundle of t under scfg, serving
// it from the store when possible. Results are identical either way:
// the artifact is a pure function of the trace content and the
// configuration projection in its key.
func ComputeAnalysis(store *artifact.Store, t *trace.Trace, windows []int, scfg stats.Config) (*AnalysisArtifact, error) {
	key := ""
	if t.ContentID != "" && store != nil {
		key = AnalysisKey(t.ContentID, windows, scfg)
		if b, ok := store.Get("analysis", key); ok {
			var a AnalysisArtifact
			if artifact.DecodeGob(b, &a) == nil && a.valid(t, windows) {
				return &a, nil
			}
		}
	}
	points, err := iw.Characteristic(t, windows, iw.Options{})
	if err != nil {
		return nil, err
	}
	law, err := iw.Fit(points)
	if err != nil {
		return nil, err
	}
	sum, err := stats.Analyze(t, scfg)
	if err != nil {
		return nil, err
	}
	a := &AnalysisArtifact{Points: points, Law: law, Summary: sum}
	if key != "" {
		if b, err := artifact.EncodeGob(a); err == nil {
			store.Put("analysis", key, b)
		}
	}
	return a, nil
}

// LoadOrGenerateTrace returns the (name, n, seed) trace, reading its
// serialized form (the binary trace format of internal/trace) from the
// store when a valid artifact exists and generating + storing it
// otherwise. The returned trace always carries its ContentID.
func LoadOrGenerateTrace(store *artifact.Store, name string, n int, seed uint64) (*trace.Trace, error) {
	id := workload.ContentID(name, n, seed)
	if b, ok := store.Get("trace", id); ok {
		if t, err := trace.Read(bytes.NewReader(b)); err == nil && t.Name == name && t.Len() >= n {
			t.ContentID = id
			return t, nil
		}
		// A structurally valid trace for the wrong recipe (or a decode
		// failure): fall through and regenerate.
	}
	t, err := workload.Generate(name, n, seed)
	if err != nil {
		return nil, err
	}
	if store != nil {
		var buf bytes.Buffer
		if trace.Write(&buf, t) == nil {
			store.Put("trace", id, buf.Bytes())
		}
	}
	return t, nil
}

// LoadOrGenerateProfileTrace is LoadOrGenerateTrace for an explicit
// (registered) profile. The content key is the profile's name-free
// CustomContentID, so two names registered with identical numeric
// content share one stored trace; the trace's Name is restamped to the
// profile's on a hit, because the stored copy may have been produced
// under a different name for the same content.
func LoadOrGenerateProfileTrace(store *artifact.Store, prof workload.Profile, n int, seed uint64) (*trace.Trace, error) {
	id := workload.CustomContentID(prof.ContentHash(), n, seed)
	if b, ok := store.Get("trace", id); ok {
		if t, err := trace.Read(bytes.NewReader(b)); err == nil && t.Len() >= n {
			t.Name = prof.Name
			t.ContentID = id
			return t, nil
		}
	}
	t, err := workload.GenerateProfile(prof, n, seed)
	if err != nil {
		return nil, err
	}
	if store != nil {
		var buf bytes.Buffer
		if trace.Write(&buf, t) == nil {
			store.Put("trace", id, buf.Bytes())
		}
	}
	return t, nil
}
