package experiments

import (
	"fomodel/internal/statsim"
)

// StatSimRow compares, for one benchmark, the reference detailed
// simulation against both estimation methodologies: the first-order model
// and statistical simulation.
type StatSimRow struct {
	Name string
	// RefCPI is the detailed simulation of the real trace.
	RefCPI float64
	// ModelCPI is the first-order model.
	ModelCPI float64
	// StatSimCPI is the timing simulation of a synthesized statistical
	// trace.
	StatSimCPI float64
	ModelErr   float64
	StatSimErr float64
}

// StatSimResult tests the paper's related-work claim that the first-order
// model "performs statistical simulation, without the simulation, and
// overall accuracy is similar".
type StatSimResult struct {
	Rows           []StatSimRow
	MeanModelErr   float64
	MeanStatSimErr float64
}

// StatSimStudy runs both methodologies across all benchmarks, fanning the
// benchmarks out across the suite's worker pool.
func StatSimStudy(s *Suite) (*StatSimResult, error) {
	rows, err := MapWorkloads(s, func(w *Workload) (StatSimRow, error) {
		var zero StatSimRow
		ref, err := s.Simulate(w, nil)
		if err != nil {
			return zero, err
		}
		est, err := s.Machine.Estimate(w.Inputs, modelOptions())
		if err != nil {
			return zero, err
		}
		ss, _, err := statsim.Simulate(w.Trace, s.Sim, s.Seed+0x5757)
		if err != nil {
			return zero, err
		}
		row := StatSimRow{
			Name:       w.Name,
			RefCPI:     ref.CPI(),
			ModelCPI:   est.CPI,
			StatSimCPI: ss.CPI(),
		}
		row.ModelErr = relErr(row.ModelCPI, row.RefCPI)
		row.StatSimErr = relErr(row.StatSimCPI, row.RefCPI)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &StatSimResult{Rows: rows}
	for _, r := range res.Rows {
		res.MeanModelErr += abs(r.ModelErr)
		res.MeanStatSimErr += abs(r.StatSimErr)
	}
	n := float64(len(res.Rows))
	res.MeanModelErr /= n
	res.MeanStatSimErr /= n
	return res, nil
}

// tab builds the result table.
func (r *StatSimResult) tab() *table {
	t := &table{
		title:  "Statistical simulation vs first-order model (reference: detailed simulation)",
		header: []string{"bench", "reference", "model", "err", "stat-sim", "err"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f3(row.RefCPI),
			f3(row.ModelCPI), pct(row.ModelErr),
			f3(row.StatSimCPI), pct(row.StatSimErr))
	}
	t.addNote("mean |err|: model %s, statistical simulation %s — the paper's claim is that the",
		pct(r.MeanModelErr), pct(r.MeanStatSimErr))
	t.addNote("model achieves statistical-simulation accuracy without running any simulation")
	return t
}

// Render prints the table as aligned text.
func (r *StatSimResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *StatSimResult) CSV() string { return r.tab().CSV() }
