package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// healthzReplica is one replica's state in the proxy's /healthz body.
type healthzReplica struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	InFlight int64  `json:"in_flight"`
	Requests int64  `json:"requests"`
	Hits     int64  `json:"hits"`
	Hedges   int64  `json:"hedges"`
	Failures int64  `json:"failures"`
	Ejects   int64  `json:"ejects"`
	Readmits int64  `json:"readmits"`
}

// healthzResponse is the proxy's /healthz body: the routing mode, the
// live hedge delay, and the per-replica view the router is acting on.
type healthzResponse struct {
	Status        string           `json:"status"`
	Mode          string           `json:"mode"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	HedgeDelayMS  float64          `json:"hedge_delay_ms"`
	Replicas      []healthzReplica `json:"replicas"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:        "ok",
		Mode:          rt.Mode(),
		UptimeSeconds: time.Since(rt.start).Seconds(),
		HedgeDelayMS:  float64(rt.hedgeDelay()) / float64(time.Millisecond),
	}
	for _, rep := range rt.reps {
		resp.Replicas = append(resp.Replicas, healthzReplica{
			URL:      rep.url,
			Healthy:  rep.healthy.Load(),
			InFlight: rep.inflight.Load(),
			Requests: rep.requests.Load(),
			Hits:     rep.hits.Load(),
			Hedges:   rep.hedges.Load(),
			Failures: rep.failures.Load(),
			Ejects:   rep.ejects.Load(),
			Readmits: rep.readmits.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //folint:allow(errdrop) status-response encode: the client may already be gone, and there is no fallback channel
}

// readyzResponse is the proxy's /readyz body.
type readyzResponse struct {
	Status          string `json:"status"`
	HealthyReplicas int    `json:"healthy_replicas"`
	Replicas        int    `json:"replicas"`
}

// handleReadyz answers whether the proxy can do useful work: ready as
// long as at least one replica is in rotation, 503 otherwise — the same
// contract the proxy itself applies to its replicas, so proxies stack.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	for _, rep := range rt.reps {
		if rep.healthy.Load() {
			healthy++
		}
	}
	resp := readyzResponse{Status: "ready", HealthyReplicas: healthy, Replicas: len(rt.reps)}
	w.Header().Set("Content-Type", "application/json")
	if healthy == 0 {
		resp.Status = "no healthy replicas"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp) //folint:allow(errdrop) readyz encode: the client may already be gone, and there is no fallback channel
}

// handleMetrics renders the proxy's counters in the Prometheus text
// exposition format, replica-labeled where per-replica.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	fmt.Fprintf(w, "# HELP fomodelproxy_uptime_seconds Time since the proxy started.\n")
	fmt.Fprintf(w, "# TYPE fomodelproxy_uptime_seconds gauge\n")
	fmt.Fprintf(w, "fomodelproxy_uptime_seconds %.3f\n", time.Since(rt.start).Seconds())

	fmt.Fprintf(w, "# HELP fomodelproxy_requests_total Requests served, by path and status code.\n")
	fmt.Fprintf(w, "# TYPE fomodelproxy_requests_total counter\n")
	rt.reqMu.Lock()
	keys := make([]requestKey, 0, len(rt.requests))
	for k := range rt.requests {
		keys = append(keys, k)
	}
	rt.reqMu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].path != keys[j].path {
			return keys[i].path < keys[j].path
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "fomodelproxy_requests_total{path=%q,code=\"%d\"} %d\n",
			k.path, k.code, rt.requestCounter(k.path, k.code).Load())
	}

	type repMetric struct {
		name, help string
		value      func(*replica) int64
	}
	for _, m := range []repMetric{
		{"fomodelproxy_replica_requests_total", "Upstream attempts sent to the replica.",
			func(r *replica) int64 { return r.requests.Load() }},
		{"fomodelproxy_replica_cache_hits_total", "Relayed responses the replica served from its cache.",
			func(r *replica) int64 { return r.hits.Load() }},
		{"fomodelproxy_replica_hedges_total", "Hedged (second) attempts sent to the replica.",
			func(r *replica) int64 { return r.hedges.Load() }},
		{"fomodelproxy_replica_failures_total", "Transport-level failures talking to the replica.",
			func(r *replica) int64 { return r.failures.Load() }},
		{"fomodelproxy_replica_ejections_total", "Times the replica was removed from rotation.",
			func(r *replica) int64 { return r.ejects.Load() }},
		{"fomodelproxy_replica_readmissions_total", "Times a /readyz probe re-admitted the replica.",
			func(r *replica) int64 { return r.readmits.Load() }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", m.name, m.help, m.name)
		for _, rep := range rt.reps {
			fmt.Fprintf(w, "%s{replica=%q} %d\n", m.name, rep.url, m.value(rep))
		}
	}

	fmt.Fprintf(w, "# HELP fomodelproxy_replica_healthy Whether the replica is in rotation (1) or ejected (0).\n")
	fmt.Fprintf(w, "# TYPE fomodelproxy_replica_healthy gauge\n")
	for _, rep := range rt.reps {
		v := 0
		if rep.healthy.Load() {
			v = 1
		}
		fmt.Fprintf(w, "fomodelproxy_replica_healthy{replica=%q} %d\n", rep.url, v)
	}
	fmt.Fprintf(w, "# HELP fomodelproxy_replica_in_flight Upstream attempts currently executing at the replica.\n")
	fmt.Fprintf(w, "# TYPE fomodelproxy_replica_in_flight gauge\n")
	for _, rep := range rt.reps {
		fmt.Fprintf(w, "fomodelproxy_replica_in_flight{replica=%q} %d\n", rep.url, rep.inflight.Load())
	}

	fmt.Fprintf(w, "# HELP fomodelproxy_workload_mirror_size Registered-workload names the proxy currently resolves.\n")
	fmt.Fprintf(w, "# TYPE fomodelproxy_workload_mirror_size gauge\n")
	fmt.Fprintf(w, "fomodelproxy_workload_mirror_size %d\n", rt.mirror.size())

	fmt.Fprintf(w, "# HELP fomodelproxy_hedge_wins_total Requests won by the hedged (second) attempt.\n")
	fmt.Fprintf(w, "# TYPE fomodelproxy_hedge_wins_total counter\n")
	fmt.Fprintf(w, "fomodelproxy_hedge_wins_total %d\n", rt.hedgeWins.Load())

	fmt.Fprintf(w, "# HELP fomodelproxy_hedge_delay_seconds Current hedge timer, derived from upstream latency.\n")
	fmt.Fprintf(w, "# TYPE fomodelproxy_hedge_delay_seconds gauge\n")
	fmt.Fprintf(w, "fomodelproxy_hedge_delay_seconds %.6f\n", rt.hedgeDelay().Seconds())

	upstream := rt.upstream.Snapshot()
	fmt.Fprintf(w, "# HELP fomodelproxy_upstream_duration_seconds Per-attempt upstream latency (hedge-delay source).\n")
	fmt.Fprintf(w, "# TYPE fomodelproxy_upstream_duration_seconds histogram\n")
	for i, bound := range upstream.Bounds {
		fmt.Fprintf(w, "fomodelproxy_upstream_duration_seconds_bucket{le=\"%g\"} %d\n", bound, upstream.Cumulative[i])
	}
	fmt.Fprintf(w, "fomodelproxy_upstream_duration_seconds_bucket{le=\"+Inf\"} %d\n", upstream.Count)
	fmt.Fprintf(w, "fomodelproxy_upstream_duration_seconds_sum %.6f\n", upstream.Sum)
	fmt.Fprintf(w, "fomodelproxy_upstream_duration_seconds_count %d\n", upstream.Count)

	latency := rt.latency.Snapshot()
	fmt.Fprintf(w, "# HELP fomodelproxy_request_duration_seconds End-to-end proxy request latency.\n")
	fmt.Fprintf(w, "# TYPE fomodelproxy_request_duration_seconds histogram\n")
	for i, bound := range latency.Bounds {
		fmt.Fprintf(w, "fomodelproxy_request_duration_seconds_bucket{le=\"%g\"} %d\n", bound, latency.Cumulative[i])
	}
	fmt.Fprintf(w, "fomodelproxy_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", latency.Count)
	fmt.Fprintf(w, "fomodelproxy_request_duration_seconds_sum %.6f\n", latency.Sum)
	fmt.Fprintf(w, "fomodelproxy_request_duration_seconds_count %d\n", latency.Count)
}
