package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// batchBody builds a /v1/batch request body from raw item objects.
func batchBody(items ...string) string {
	return `{"items":[` + strings.Join(items, ",") + `]}`
}

// decodeBatch decodes a 200 /v1/batch response.
func decodeBatch(t *testing.T, body []byte) BatchResponse {
	t.Helper()
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("batch response is not JSON: %v\nbody: %s", err, body)
	}
	return resp
}

// TestBatchMatchesPredict pins the batch contract at its core: each
// item's body is byte-for-byte the response the equivalent /v1/predict
// call returns, in request order.
func TestBatchMatchesPredict(t *testing.T) {
	s := testServer(Config{})
	items := []string{
		`{"bench":"gzip"}`,
		`{"bench":"mcf","sim":true}`,
		`{"bench":"vortex","machine":{"width":8}}`,
	}

	rec := post(s, "/v1/batch", batchBody(items...))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d\nbody: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatch(t, rec.Body.Bytes())
	if len(resp.Items) != len(items) {
		t.Fatalf("batch returned %d items, want %d", len(resp.Items), len(items))
	}
	for i, item := range resp.Items {
		single := post(s, "/v1/predict", items[i])
		if single.Code != http.StatusOK {
			t.Fatalf("predict %d: status = %d\nbody: %s", i, single.Code, single.Body.String())
		}
		if item.Status != http.StatusOK {
			t.Errorf("item %d: status = %d, want 200 (error %q)", i, item.Status, item.Error)
			continue
		}
		if item.Body != single.Body.String() {
			t.Errorf("item %d: batch body differs from /v1/predict body\nbatch:\n%s\npredict:\n%s",
				i, item.Body, single.Body.String())
		}
	}
}

// TestBatchItemIsolation pins that invalid items fail in place with a
// per-item 400 while the valid items complete normally.
func TestBatchItemIsolation(t *testing.T) {
	s := testServer(Config{})
	rec := post(s, "/v1/batch", batchBody(
		`{"bench":"gzip"}`,
		`{"bench":"nope"}`,
		`{"bench":"mcf","n":10}`,
		`{"bench":"vortex"}`,
	))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d\nbody: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatch(t, rec.Body.Bytes())
	if len(resp.Items) != 4 {
		t.Fatalf("items = %d, want 4", len(resp.Items))
	}
	wantStatus := []int{200, 400, 400, 200}
	wantErrSub := []string{"", "unknown profile", "outside", ""}
	for i, item := range resp.Items {
		if item.Status != wantStatus[i] {
			t.Errorf("item %d: status = %d, want %d", i, item.Status, wantStatus[i])
		}
		if !strings.Contains(item.Error, wantErrSub[i]) {
			t.Errorf("item %d: error %q does not mention %q", i, item.Error, wantErrSub[i])
		}
		if wantStatus[i] == 200 && item.Body == "" {
			t.Errorf("item %d: 200 item has no body", i)
		}
		if wantStatus[i] != 200 && item.Body != "" {
			t.Errorf("item %d: failed item carries a body", i)
		}
	}
}

// TestBatchValidation pins the request-level rejections: an empty batch
// and an oversized batch are 400s before any computation starts.
func TestBatchValidation(t *testing.T) {
	s := testServer(Config{})

	rec := post(s, "/v1/batch", `{"items":[]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", rec.Code)
	}
	if msg := errorBody(t, rec); !strings.Contains(msg, "at least one") {
		t.Errorf("empty-batch error %q does not explain the minimum", msg)
	}

	items := make([]string, maxBatchItems+1)
	for i := range items {
		items[i] = fmt.Sprintf(`{"bench":"gzip","seed":%d}`, i+1)
	}
	rec = post(s, "/v1/batch", batchBody(items...))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", rec.Code)
	}
	if msg := errorBody(t, rec); !strings.Contains(msg, "item limit") {
		t.Errorf("oversized-batch error %q does not mention the item limit", msg)
	}
}

// TestBatchSharesResponseCache pins per-item cache participation: items
// join the same response-cache entries as /v1/predict, in both
// directions, including duplicates within one batch.
func TestBatchSharesResponseCache(t *testing.T) {
	s := testServer(Config{})

	// Warm one entry through the single endpoint.
	if rec := post(s, "/v1/predict", `{"bench":"gzip"}`); rec.Code != http.StatusOK {
		t.Fatalf("warm predict: status = %d", rec.Code)
	}

	rec := post(s, "/v1/batch", batchBody(
		`{"bench":"gzip"}`, // warmed above -> hit
		`{"bench":"mcf"}`,  // fresh -> miss
		`{"bench":"mcf"}`,  // duplicate in-batch -> hit (joins or follows its twin)
	))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d\nbody: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatch(t, rec.Body.Bytes())
	if got := resp.Items[0].Cache; got != "hit" {
		t.Errorf("item 0 (warmed) cache = %q, want hit", got)
	}
	mcf := []string{resp.Items[1].Cache, resp.Items[2].Cache}
	hits := 0
	for _, c := range mcf {
		if c == "hit" {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("duplicate mcf items cache = %v, want exactly one hit", mcf)
	}
	if resp.Items[1].Body != resp.Items[2].Body {
		t.Errorf("duplicate items returned different bodies")
	}

	// And the reverse direction: a single predict after the batch hits
	// the entry the batch computed.
	single := post(s, "/v1/predict", `{"bench":"mcf"}`)
	if got := single.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("predict after batch X-Cache = %q, want hit", got)
	}
	if single.Body.String() != resp.Items[1].Body {
		t.Errorf("predict body differs from batch item body")
	}
}

// TestBatchItemPanicIsolated pins worker panic recovery: a panic while
// computing one item becomes that item's 500 with a structured error,
// the sibling items succeed, and the server keeps serving.
func TestBatchItemPanicIsolated(t *testing.T) {
	s := testServer(Config{})
	s.panicHook = func(name string) {
		if name == "twolf" {
			panic("injected batch failure")
		}
	}
	rec := post(s, "/v1/batch", batchBody(
		`{"bench":"gzip"}`,
		`{"bench":"twolf"}`,
		`{"bench":"mcf"}`,
	))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d\nbody: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatch(t, rec.Body.Bytes())
	if got := resp.Items[1].Status; got != http.StatusInternalServerError {
		t.Errorf("panicked item status = %d, want 500", got)
	}
	if !strings.Contains(resp.Items[1].Error, "internal panic") ||
		!strings.Contains(resp.Items[1].Error, "injected batch failure") {
		t.Errorf("panicked item error = %q, want an internal panic mentioning the cause", resp.Items[1].Error)
	}
	for _, i := range []int{0, 2} {
		if resp.Items[i].Status != http.StatusOK {
			t.Errorf("sibling item %d: status = %d, want 200 (error %q)",
				i, resp.Items[i].Status, resp.Items[i].Error)
		}
	}

	// The panic must not poison the cache: retrying the item succeeds.
	s.panicHook = nil
	retry := post(s, "/v1/predict", `{"bench":"twolf"}`)
	if retry.Code != http.StatusOK {
		t.Errorf("retry after panic: status = %d, want 200", retry.Code)
	}
}
