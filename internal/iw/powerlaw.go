package iw

import (
	"fmt"
	"math"

	"fomodel/internal/fit"
)

// PowerLaw is the fitted IW characteristic I = Alpha * W^Beta (Table 1 of
// the paper), together with the goodness of fit of the underlying log-log
// regression.
type PowerLaw struct {
	Alpha float64
	Beta  float64
	R2    float64
}

// Fit fits points to the power law by least squares in log2-log2 space,
// exactly as the paper fits its Fig. 5 lines.
func Fit(points []Point) (PowerLaw, error) {
	if len(points) < 2 {
		return PowerLaw{}, fmt.Errorf("iw: need at least 2 points to fit, have %d", len(points))
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		if p.W <= 0 || p.I <= 0 {
			return PowerLaw{}, fmt.Errorf("iw: non-positive point (W=%d, I=%v)", p.W, p.I)
		}
		xs[i] = math.Log2(float64(p.W))
		ys[i] = math.Log2(p.I)
	}
	line, err := fit.Linear(xs, ys)
	if err != nil {
		return PowerLaw{}, err
	}
	return PowerLaw{
		Alpha: math.Exp2(line.Intercept),
		Beta:  line.Slope,
		R2:    line.R2,
	}, nil
}

// Eval returns the unit-latency issue rate predicted at window size w.
func (p PowerLaw) Eval(w float64) float64 {
	if w <= 0 {
		return 0
	}
	return p.Alpha * math.Pow(w, p.Beta)
}

// InterpolateAt returns the measured issue rate at window size w by
// log-log interpolation between the nearest measured points (the measured
// curve itself rather than the global power-law fit — the two differ for
// workloads whose curve is visibly concave, like the paper's vpr). Outside
// the measured range, the nearest point's local slope extrapolates.
func InterpolateAt(points []Point, w float64) (float64, error) {
	if len(points) < 2 {
		return 0, fmt.Errorf("iw: need at least 2 points to interpolate, have %d", len(points))
	}
	if w <= 0 {
		return 0, fmt.Errorf("iw: window %v must be positive", w)
	}
	lo, hi := points[0], points[1]
	for k := 1; k < len(points); k++ {
		if float64(points[k].W) >= w || k == len(points)-1 {
			lo, hi = points[k-1], points[k]
			break
		}
	}
	if lo.W <= 0 || hi.W <= 0 || lo.I <= 0 || hi.I <= 0 || lo.W == hi.W {
		return 0, fmt.Errorf("iw: degenerate interpolation points (W=%d,%d)", lo.W, hi.W)
	}
	slope := (math.Log2(hi.I) - math.Log2(lo.I)) / (math.Log2(float64(hi.W)) - math.Log2(float64(lo.W)))
	return math.Exp2(math.Log2(lo.I) + slope*(math.Log2(w)-math.Log2(float64(lo.W)))), nil
}

// Window returns the window size at which the unit-latency curve reaches
// issue rate i (the inverse of Eval). A non-positive rate yields 0.
func (p PowerLaw) Window(i float64) float64 {
	if i <= 0 || p.Alpha <= 0 || p.Beta == 0 {
		return 0
	}
	return math.Pow(i/p.Alpha, 1/p.Beta)
}
