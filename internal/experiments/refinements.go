package experiments

import (
	"fomodel/internal/core"
)

// RefinementRow compares branch-penalty derivations for one benchmark
// against the simulator.
type RefinementRow struct {
	Name        string
	SimCPI      float64
	MidpointCPI float64
	MeasuredCPI float64
	MidpointErr float64
	MeasuredErr float64
	// BurstFactor is the measured Σ f_misp(i)/i.
	BurstFactor float64
}

// RefinementResult evaluates the paper's §7 refinement #3 — modeling
// misprediction bursts from measured secondary statistics — against the
// §5 midpoint heuristic.
type RefinementResult struct {
	Rows            []RefinementRow
	MeanMidpointErr float64
	MeanMeasuredErr float64
}

// BranchBurstRefinement runs the comparison over all benchmarks, fanning
// them out across the suite's worker pool.
func BranchBurstRefinement(s *Suite) (*RefinementResult, error) {
	rows, err := MapWorkloads(s, func(w *Workload) (RefinementRow, error) {
		var zero RefinementRow
		sim, err := s.Simulate(w, nil)
		if err != nil {
			return zero, err
		}
		mid, err := s.Machine.Estimate(w.Inputs, core.Options{BranchMode: core.BranchMidpoint})
		if err != nil {
			return zero, err
		}
		meas, err := s.Machine.Estimate(w.Inputs, core.Options{BranchMode: core.BranchMeasured})
		if err != nil {
			return zero, err
		}
		row := RefinementRow{
			Name:        w.Name,
			SimCPI:      sim.CPI(),
			MidpointCPI: mid.CPI,
			MeasuredCPI: meas.CPI,
			BurstFactor: w.Inputs.BranchBurstFactor,
		}
		row.MidpointErr = relErr(row.MidpointCPI, row.SimCPI)
		row.MeasuredErr = relErr(row.MeasuredCPI, row.SimCPI)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &RefinementResult{Rows: rows}
	for _, r := range res.Rows {
		res.MeanMidpointErr += abs(r.MidpointErr)
		res.MeanMeasuredErr += abs(r.MeasuredErr)
	}
	n := float64(len(res.Rows))
	res.MeanMidpointErr /= n
	res.MeanMeasuredErr /= n
	return res, nil
}

// tab builds the result table.
func (r *RefinementResult) tab() *table {
	t := &table{
		title:  "Refinement (§7 #3): measured misprediction bursts vs the §5 midpoint heuristic",
		header: []string{"bench", "sim CPI", "midpoint", "err", "measured-burst", "err", "burst factor"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Name, f3(row.SimCPI),
			f3(row.MidpointCPI), pct(row.MidpointErr),
			f3(row.MeasuredCPI), pct(row.MeasuredErr),
			f2(row.BurstFactor))
	}
	t.addNote("mean |err|: midpoint %s, measured bursts %s", pct(r.MeanMidpointErr), pct(r.MeanMeasuredErr))
	return t
}

// Render prints the table as aligned text.
func (r *RefinementResult) Render() string { return r.tab().String() }

// CSV renders the table as comma-separated values.
func (r *RefinementResult) CSV() string { return r.tab().CSV() }
