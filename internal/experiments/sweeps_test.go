package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestSweepValidate(t *testing.T) {
	good := SweepSpec{Param: "width", Benches: []string{"gzip"}, Values: []int{2, 4}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []SweepSpec{
		{Param: "bogus", Benches: []string{"gzip"}, Values: []int{2}},
		{Param: "width", Benches: nil, Values: []int{2}},
		{Param: "width", Benches: []string{"nonsense"}, Values: []int{2}},
		{Param: "width", Benches: []string{"gzip"}, Values: nil},
		{Param: "width", Benches: []string{"gzip"}, Values: []int{0}},
	}
	for i, sp := range cases {
		if err := sp.Validate(); err == nil {
			t.Fatalf("case %d: invalid spec %+v accepted", i, sp)
		}
	}
}

func TestSweepParams(t *testing.T) {
	params := strings.Join(SweepParams(), ",")
	for _, want := range []string{"window", "rob", "width", "depth"} {
		if !strings.Contains(params, want) {
			t.Fatalf("parameter %q missing from %s", want, params)
		}
	}
}

// TestSweepParamsDeterministic pins that the parameter enumeration —
// and the Validate error message built from it — is sorted and stable
// across repeated map iterations, so an unknown-parameter error is the
// same bytes on every request and every process.
func TestSweepParamsDeterministic(t *testing.T) {
	const wantList = "depth, rob, width, window"
	wantErr := `experiments: unknown sweep parameter "bogus" (known: ` + wantList + `)`
	for i := 0; i < 20; i++ {
		if got := strings.Join(SweepParams(), ", "); got != wantList {
			t.Fatalf("iteration %d: SweepParams = %q, want %q", i, got, wantList)
		}
		err := SweepSpec{Param: "bogus", Benches: []string{"gzip"}, Values: []int{2}}.Validate()
		if err == nil || err.Error() != wantErr {
			t.Fatalf("iteration %d: Validate error = %v, want %q", i, err, wantErr)
		}
	}
}

// TestSweepCanceled is the serving daemon's client-disconnect guarantee
// at the engine level: a canceled context stops the sweep before any grid
// cell computes.
func TestSweepCanceled(t *testing.T) {
	s := smallSuite()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, s, SweepSpec{
		Param: "width", Benches: []string{"gzip", "mcf"}, Values: []int{2, 4, 8},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, sims := s.Counters(); sims != 0 {
		t.Fatalf("canceled sweep still ran %d simulations", sims)
	}
}

func TestSweepWidthAndDepth(t *testing.T) {
	s := smallSuite()
	for _, param := range []string{"width", "depth"} {
		res, err := Sweep(context.Background(), s, SweepSpec{
			Param: param, Benches: []string{"gzip"}, Values: []int{2, 4},
		})
		if err != nil {
			t.Fatalf("%s: %v", param, err)
		}
		if len(res.Points) != 2 {
			t.Fatalf("%s: %d points, want 2", param, len(res.Points))
		}
		for i, want := range []int{2, 4} {
			p := res.Points[i]
			if p.Value != want || p.SimCPI <= 0 || p.ModelCPI <= 0 {
				t.Fatalf("%s: bad point %+v", param, p)
			}
		}
		if res.Points[0].SimCPI <= res.Points[1].SimCPI && param == "width" {
			t.Fatalf("width 2 should be slower than width 4: %+v", res.Points)
		}
		if res.Title == "" || !strings.Contains(res.Render(), param) {
			t.Fatalf("%s: render missing param:\n%s", param, res.Render())
		}
	}
}
