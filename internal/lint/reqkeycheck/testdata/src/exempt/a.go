// Hand-built keys outside the serving packages: the artifact store's
// content keys are its own namespace, not request keys, and are not
// reqkeycheck's business.
package artifact

import "fmt"

func contentKey(bench string, n int, seed uint64) string {
	key := fmt.Sprintf("%s|%d|%d", bench, n, seed)
	return key
}
