#!/usr/bin/env bash
# registry_smoke.sh — CI smoke test for the named workload registry.
#
# Boots a fomodeld and a 2-replica fleet behind a fomodelproxy, then
# walks the registry loop end to end over real sockets: dump a built-in
# profile, rename it, register it under a custom name (direct and via
# the proxy), predict by that name — byte-equal to predicting the
# built-in it was cloned from, because cache keys are content-hashed —
# delete it, and verify the name 404s everywhere afterwards. Also pins
# tenant ownership (cross-tenant delete is 409) and the re-register
# staleness property (same name, different content, different bytes).
set -euo pipefail
cd "$(dirname "$0")/.."

N=${N:-20000}
bin=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT

echo "== build" >&2
go build -o "$bin/fomodel" ./cmd/fomodel
go build -o "$bin/fomodeld" ./cmd/fomodeld
go build -o "$bin/fomodelproxy" ./cmd/fomodelproxy

wait_ready() {
    for _ in $(seq 1 200); do
        if curl -fsS "$1/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "endpoint never became ready: $1" >&2
    return 1
}

echo "== boot: daemon, 2 replicas, proxy" >&2
"$bin/fomodeld" -addr 127.0.0.1:8791 -n "$N" -warm=false >"$bin/ref.log" 2>&1 &
pids+=($!)
"$bin/fomodeld" -addr 127.0.0.1:8792 -n "$N" -warm=false >"$bin/rep1.log" 2>&1 &
pids+=($!)
"$bin/fomodeld" -addr 127.0.0.1:8793 -n "$N" -warm=false >"$bin/rep2.log" 2>&1 &
pids+=($!)
"$bin/fomodelproxy" -addr 127.0.0.1:8790 \
    -replicas http://127.0.0.1:8792,http://127.0.0.1:8793 \
    -n "$N" -probe-interval 500ms >"$bin/proxy.log" 2>&1 &
pids+=($!)
ref=http://127.0.0.1:8791
proxy=http://127.0.0.1:8790
wait_ready "$ref"
wait_ready http://127.0.0.1:8792
wait_ready http://127.0.0.1:8793
wait_ready "$proxy"

echo "== profile: dump gzip, rename to smoke-wl" >&2
"$bin/fomodel" -dump-profile gzip | sed 's/"name": "gzip"/"name": "smoke-wl"/' >"$bin/profile.json"

post() {  # $1 base, $2 path, $3 body-file-or-inline, extra args after
    local base=$1 path=$2 body=$3; shift 3
    curl -fsS -X POST -H 'Content-Type: application/json' "$@" -d "$body" "$base$path"
}

echo "== register -> predict-by-name -> delete -> 404 (direct daemon)" >&2
post "$ref" /v1/workloads/smoke-wl @"$bin/profile.json" -H 'X-Tenant: alice' >"$bin/reg.json"
grep -q '"content_hash"' "$bin/reg.json" || { echo "registration response missing content_hash" >&2; exit 1; }

# Content-hash keying: predicting the registered clone must be
# byte-equal to predicting the built-in it was cloned from, except for
# the workload name echoed in the inputs.
post "$ref" /v1/predict '{"bench": "smoke-wl"}' | sed 's/"smoke-wl"/"gzip"/g' >"$bin/got"
post "$ref" /v1/predict '{"bench": "gzip"}' >"$bin/want"
cmp -s "$bin/want" "$bin/got" || { echo "BYTE MISMATCH: registered clone vs built-in" >&2; diff "$bin/want" "$bin/got" >&2 || true; exit 1; }
echo "ok: registered-name predict byte-equal to its built-in content" >&2

# Tenant ownership: bob cannot delete alice's workload.
code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE -H 'X-Tenant: bob' "$ref/v1/workloads/smoke-wl")
[ "$code" = 409 ] || { echo "cross-tenant delete returned $code, want 409" >&2; exit 1; }
echo "ok: cross-tenant delete refused with 409" >&2

curl -fsS -X DELETE -H 'X-Tenant: alice' "$ref/v1/workloads/smoke-wl" >/dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' "$ref/v1/workloads/smoke-wl")
[ "$code" = 404 ] || { echo "deleted workload GET returned $code, want 404" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d '{"bench": "smoke-wl"}' "$ref/v1/predict")
[ "$code" = 400 ] || { echo "predict after delete returned $code, want 400" >&2; exit 1; }
echo "ok: delete -> GET 404, predict 400" >&2

echo "== re-register with different content must change the bytes" >&2
"$bin/fomodel" -dump-profile mcf | sed 's/"name": "mcf"/"name": "smoke-wl"/' >"$bin/profile2.json"
post "$ref" /v1/workloads/smoke-wl @"$bin/profile.json" -H 'X-Tenant: alice' >/dev/null
post "$ref" /v1/predict '{"bench": "smoke-wl"}' >"$bin/first"
curl -fsS -X DELETE -H 'X-Tenant: alice' "$ref/v1/workloads/smoke-wl" >/dev/null
post "$ref" /v1/workloads/smoke-wl @"$bin/profile2.json" -H 'X-Tenant: alice' >/dev/null
post "$ref" /v1/predict '{"bench": "smoke-wl"}' >"$bin/second"
cmp -s "$bin/first" "$bin/second" && { echo "re-registered name served stale bytes" >&2; exit 1; }
echo "ok: re-register with different content changes the prediction" >&2

echo "== proxy: registration fans out to every replica" >&2
sed 's/"name": "smoke-wl"/"name": "proxy-wl"/' "$bin/profile.json" >"$bin/profile3.json"
post "$proxy" /v1/workloads/proxy-wl @"$bin/profile3.json" -H 'X-Tenant: alice' >/dev/null
for port in 8792 8793; do
    curl -fsS "http://127.0.0.1:$port/v1/workloads/proxy-wl" >/dev/null \
        || { echo "replica :$port missing the proxied registration" >&2; exit 1; }
done
post "$proxy" /v1/predict '{"bench": "proxy-wl"}' >"$bin/via_proxy"
post http://127.0.0.1:8792 /v1/predict '{"bench": "proxy-wl"}' >"$bin/via_replica"
cmp -s "$bin/via_proxy" "$bin/via_replica" || { echo "BYTE MISMATCH: proxy vs replica predict-by-name" >&2; exit 1; }
curl -fsS -X DELETE -H 'X-Tenant: alice' "$proxy/v1/workloads/proxy-wl" >/dev/null
for port in 8792 8793; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$port/v1/workloads/proxy-wl")
    [ "$code" = 404 ] || { echo "replica :$port still serves the deleted name: $code" >&2; exit 1; }
done
echo "ok: proxy fan-out register/predict/delete across both replicas" >&2

curl -fsS "$ref/metrics" | grep -q '^fomodeld_registry_registrations_total' \
    || { echo "daemon /metrics missing registry counters" >&2; exit 1; }
echo "registry smoke passed" >&2
