package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 4 << 10, Assoc: 4, LineBytes: 128}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, Assoc: 4, LineBytes: 128},
		{SizeBytes: 4096, Assoc: 0, LineBytes: 128},
		{SizeBytes: 4096, Assoc: 4, LineBytes: 100},        // not power of two
		{SizeBytes: 4096 + 128, Assoc: 4, LineBytes: 128},  // not divisible
		{SizeBytes: 3 * 4 * 128, Assoc: 4, LineBytes: 128}, // 3 sets
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSets(t *testing.T) {
	cfg := Config{SizeBytes: 4 << 10, Assoc: 4, LineBytes: 128}
	if got := cfg.Sets(); got != 8 {
		t.Fatalf("sets %d, want 8", got)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 1024, Assoc: 2, LineBytes: 64})
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1038) { // same 64-byte line
		t.Fatal("same-line access missed")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Fatalf("counters %d/%d", c.Accesses, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 64-byte lines, 2 sets → same set for addresses 128 apart.
	c := mustCache(t, Config{SizeBytes: 256, Assoc: 2, LineBytes: 64})
	a, b, d := uint64(0), uint64(256), uint64(512) // all map to set 0
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // evicts b (LRU)
	if !c.Probe(a) {
		t.Fatal("a evicted, want kept (MRU)")
	}
	if c.Probe(b) {
		t.Fatal("b kept, want evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Fatal("d not resident after fill")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 256, Assoc: 2, LineBytes: 64})
	c.Access(0)
	c.Access(256)
	c.Probe(0) // must not refresh recency
	before := c.Misses
	c.Access(512) // evicts the true LRU: 0
	if c.Probe(0) {
		t.Fatal("probe refreshed recency")
	}
	if c.Misses != before+1 {
		t.Fatal("probe affected counters")
	}
}

func TestReset(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 256, Assoc: 2, LineBytes: 64})
	c.Access(0)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("counters survived reset")
	}
	if c.Probe(0) {
		t.Fatal("contents survived reset")
	}
}

func TestMissRate(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 256, Assoc: 2, LineBytes: 64})
	if c.MissRate() != 0 {
		t.Fatal("untouched cache has non-zero miss rate")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %v, want 0.5", got)
	}
}

func TestFullyAssociativeNeverConflicts(t *testing.T) {
	// 8 lines, 8-way → one set; 8 distinct lines must all be resident.
	c := mustCache(t, Config{SizeBytes: 512, Assoc: 8, LineBytes: 64})
	for i := uint64(0); i < 8; i++ {
		c.Access(i * 64)
	}
	for i := uint64(0); i < 8; i++ {
		if !c.Probe(i * 64) {
			t.Fatalf("line %d evicted from fully associative cache", i)
		}
	}
}

func TestHierarchyClassification(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Data(0x10000); got != LongMiss {
		t.Fatalf("cold access %v, want long miss", got)
	}
	if got := h.Data(0x10000); got != Hit {
		t.Fatalf("warm access %v, want hit", got)
	}
	if got := h.Fetch(0x400000); got != LongMiss {
		t.Fatalf("cold fetch %v, want long miss", got)
	}
	if got := h.Fetch(0x400000); got != Hit {
		t.Fatalf("warm fetch %v", got)
	}
	if h.IFetches != 2 || h.ILong != 1 {
		t.Fatalf("fetch counters %d/%d", h.IFetches, h.ILong)
	}
}

func TestHierarchyShortMiss(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(0x30000)
	h.Data(addr) // long miss, now in L1+L2
	// Evict addr from L1 by filling its set (8 sets × 128 B lines → same
	// set every 1024 bytes); L2 has 1024 sets so these do not conflict
	// there.
	for i := uint64(1); i <= 4; i++ {
		h.Data(addr + i*1024)
	}
	if got := h.Data(addr); got != ShortMiss {
		t.Fatalf("expected short miss after L1 eviction, got %v", got)
	}
	if h.DShort != 1 {
		t.Fatalf("DShort %d, want 1", h.DShort)
	}
}

func TestHierarchyLatency(t *testing.T) {
	cfg := DefaultHierarchy()
	if cfg.Latency(Hit) != 0 || cfg.Latency(ShortMiss) != 8 || cfg.Latency(LongMiss) != 200 {
		t.Fatal("latency mapping wrong")
	}
}

func TestHierarchyValidate(t *testing.T) {
	cfg := DefaultHierarchy()
	cfg.ShortMissLatency = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero short-miss latency accepted")
	}
	cfg = DefaultHierarchy()
	cfg.L2.LineBytes = 100
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad L2 accepted")
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	h.Data(0x1000)
	h.ResetStats()
	if h.DAccesses != 0 || h.DLong != 0 {
		t.Fatal("stats survived ResetStats")
	}
	if got := h.Data(0x1000); got != Hit {
		t.Fatalf("contents did not survive ResetStats: %v", got)
	}
}

func TestResultString(t *testing.T) {
	if Hit.String() != "hit" || ShortMiss.String() != "short-miss" || LongMiss.String() != "long-miss" {
		t.Fatal("result strings wrong")
	}
	if Result(9).String() == "" {
		t.Fatal("unknown result empty")
	}
}

func TestPropertyMissesNeverExceedAccesses(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 512, Assoc: 2, LineBytes: 64})
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		return c.Misses <= c.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyImmediateRehitAlwaysHits(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 1024, Assoc: 4, LineBytes: 64})
	f := func(a uint32) bool {
		c.Access(uint64(a))
		return c.Access(uint64(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
