package server

import (
	"container/list"
	"sync"

	"fomodel/internal/core"
	"fomodel/internal/experiments"
	"fomodel/internal/iw"
	"fomodel/internal/metrics"
	"fomodel/internal/uarch"
)

// analysisCache is the daemon's in-memory bundle cache: analysis
// artifacts (IW points, power-law fit, stats summary) keyed by *content*
// — the trace's generation recipe plus the machine configuration
// projection — so any two requests that need the same analysis share one
// computation regardless of which trace pointer they arrived with.
// Bounded LRU with single-flight admission, following respCache: only
// successful results are retained, failures are shared with waiters and
// forgotten, and eviction skips in-flight entries.
type analysisCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*analysisEntry
	order   *list.List // front = most recently used

	hits, misses metrics.Counter
}

type analysisEntry struct {
	key  string
	elem *list.Element
	once sync.Once
	// finished is set under the cache mutex after once completed;
	// eviction skips unfinished entries.
	finished bool
	a        *experiments.AnalysisArtifact
	err      error
}

func newAnalysisCache(capacity int) *analysisCache {
	return &analysisCache{
		cap:     capacity,
		entries: make(map[string]*analysisEntry),
		order:   list.New(),
	}
}

// do returns the cached bundle for key, or runs compute once and caches
// its result. Concurrent callers for the same key block on one
// computation.
func (c *analysisCache) do(key string, compute func() (*experiments.AnalysisArtifact, error)) (*experiments.AnalysisArtifact, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
	} else {
		e = &analysisEntry{key: key}
		e.elem = c.order.PushFront(e)
		c.entries[key] = e
		c.evictLocked()
		c.mu.Unlock()
	}
	joined := true
	e.once.Do(func() {
		joined = false
		c.misses.Inc()
		e.a, e.err = compute()
		c.mu.Lock()
		e.finished = true
		if e.err != nil && c.entries[key] == e {
			c.order.Remove(e.elem)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	})
	if joined && e.err == nil {
		c.hits.Inc()
	}
	return e.a, e.err
}

// evictLocked trims toward capacity, least recently used first, skipping
// in-flight entries.
func (c *analysisCache) evictLocked() {
	for elem := c.order.Back(); elem != nil && len(c.entries) > c.cap; {
		prev := elem.Prev()
		e := elem.Value.(*analysisEntry)
		if e.finished {
			c.order.Remove(elem)
			delete(c.entries, e.key)
		}
		elem = prev
	}
}

// Len returns the number of cached entries (including in-flight ones).
func (c *analysisCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the hit and miss counts.
func (c *analysisCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// predictRecord is the daemon's predict pipeline. The analysis bundle is
// resolved by content, cheapest source first: the in-memory analysis
// cache, then the artifact store *without materializing the trace* (a
// model-only prediction needs the bundle, not the 24-bytes-per-
// instruction trace — this is what makes a restarted daemon's first
// requests fast), and only then the trace caches and the full analysis
// pipeline. The trace itself is loaded solely when the request asks for
// a detailed simulator run.
func (s *Server) predictRecord(req PredictRequest, machine core.Machine, ucfg uarch.Config,
	mode core.BranchPenaltyMode) (PredictRecord, error) {
	scfg := predictStatsConfig(machine, ucfg)
	rw, err := s.resolveWorkload(req)
	if err != nil {
		return PredictRecord{}, err
	}
	key := experiments.AnalysisKey(rw.contentID, iw.DefaultWindows(), scfg)
	an, err := s.analysis.do(key, func() (*experiments.AnalysisArtifact, error) {
		if a, ok := experiments.LookupAnalysis(s.cfg.Store, rw.contentID, req.N, iw.DefaultWindows(), scfg); ok {
			return a, nil
		}
		t, err := s.traceFor(rw)
		if err != nil {
			return nil, err
		}
		return experiments.ComputeAnalysis(s.cfg.Store, t, iw.DefaultWindows(), scfg)
	})
	if err != nil {
		return PredictRecord{}, err
	}
	inputs, err := core.InputsFromCurve(an.Law, an.Points, machine.WindowSize, an.Summary)
	if err != nil {
		return PredictRecord{}, err
	}
	est, err := machine.Estimate(inputs, core.Options{BranchMode: mode})
	if err != nil {
		return PredictRecord{}, err
	}
	rec := PredictRecord{Bench: req.Bench, Inputs: inputs, Estimate: est}
	if req.Sim {
		t, err := s.traceFor(rw)
		if err != nil {
			return PredictRecord{}, err
		}
		r, err := s.suite.Preps().Simulate(t, ucfg)
		if err != nil {
			return PredictRecord{}, err
		}
		cpi := r.CPI()
		rec.SimCPI = &cpi
	}
	return rec, nil
}
