// Package fit provides the small numerical utilities the model needs:
// ordinary least-squares linear regression (for the log-log power-law fit
// of the IW characteristic) and basic summary statistics.
package fit

import (
	"fmt"
	"math"
)

// Line is a fitted line y = Slope*x + Intercept with its coefficient of
// determination.
type Line struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// Linear fits y = slope*x + intercept by ordinary least squares.
// It requires at least two distinct x values.
func Linear(xs, ys []float64) (Line, error) {
	if len(xs) != len(ys) {
		return Line{}, fmt.Errorf("fit: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Line{}, fmt.Errorf("fit: need at least 2 points, have %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Line{}, fmt.Errorf("fit: all x values identical (%v)", mx)
	}
	slope := sxy / sxx
	line := Line{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		line.R2 = 1
	} else {
		line.R2 = sxy * sxy / (sxx * syy)
	}
	return line, nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanAbsRelError returns the mean of |est-ref|/ref over pairs with a
// non-zero reference. It is the error metric the paper reports ("average
// CPI error is 5.8%").
func MeanAbsRelError(est, ref []float64) (float64, error) {
	if len(est) != len(ref) {
		return 0, fmt.Errorf("fit: length mismatch %d vs %d", len(est), len(ref))
	}
	var sum float64
	var n int
	for i := range est {
		if ref[i] == 0 {
			continue
		}
		sum += math.Abs(est[i]-ref[i]) / math.Abs(ref[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("fit: no non-zero reference values")
	}
	return sum / float64(n), nil
}

// MaxAbsRelError returns the largest |est-ref|/ref over pairs with a
// non-zero reference, and its index.
func MaxAbsRelError(est, ref []float64) (float64, int, error) {
	if len(est) != len(ref) {
		return 0, 0, fmt.Errorf("fit: length mismatch %d vs %d", len(est), len(ref))
	}
	worst, at := -1.0, -1
	for i := range est {
		if ref[i] == 0 {
			continue
		}
		e := math.Abs(est[i]-ref[i]) / math.Abs(ref[i])
		if e > worst {
			worst, at = e, i
		}
	}
	if at < 0 {
		return 0, 0, fmt.Errorf("fit: no non-zero reference values")
	}
	return worst, at, nil
}
