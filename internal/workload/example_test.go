package workload_test

import (
	"fmt"

	"fomodel/internal/workload"
)

// Workloads are generated from named profiles and an explicit seed; the
// same (profile, seed, length) always produces the same trace.
func ExampleGenerate() {
	tr, err := workload.Generate("gzip", 10000, 1)
	if err != nil {
		panic(err)
	}
	again, err := workload.Generate("gzip", 10000, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload %s, %v instructions, deterministic: %v\n",
		tr.Name, tr.Len() >= 10000, tr.Instrs[42] == again.Instrs[42])
	// Output:
	// workload gzip, true instructions, deterministic: true
}

// Custom workloads start from a named profile or from scratch.
func ExampleNewGenerator() {
	p, err := workload.ByName("mcf")
	if err != nil {
		panic(err)
	}
	p.Name = "mcf-variant"
	p.ColdBurstMean = 1.1 // less clustered long misses
	g, err := workload.NewGenerator(p, 7)
	if err != nil {
		panic(err)
	}
	tr, err := g.Generate(5000)
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.Name, tr.Validate() == nil)
	// Output:
	// mcf-variant true
}
