// Package registry implements the named custom-workload registry: a
// tenant-scoped mapping from workload names to validated
// workload.Profile values, with per-tenant count and byte quotas and
// optional persistence through the artifact store.
//
// A registered name works anywhere a built-in benchmark name is
// accepted (predict, sweep, batch, optimize, the CLI's -remote mode,
// and the proxy). The registry never serves traces itself; it resolves
// names to profiles and to content hashes, and the existing
// content-keyed machinery (workload.CustomContentID, internal/reqkey)
// does the rest: two tenants registering identical profiles share one
// trace and one cache entry, while re-registering a name with
// different content changes every downstream key, so stale results
// cannot be served under the new definition.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"fomodel/internal/artifact"
	"fomodel/internal/metrics"
	"fomodel/internal/workload"
)

// Sentinel errors; handlers map these to HTTP statuses (ErrBuiltin →
// 400, ErrOwned → 409, ErrQuota → 403, ErrNotFound → 404).
var (
	ErrNotFound = errors.New("registry: no workload registered under this name")
	ErrBuiltin  = errors.New("registry: name collides with a built-in profile")
	ErrOwned    = errors.New("registry: name is owned by another tenant")
	ErrQuota    = errors.New("registry: tenant quota exceeded")
)

// Defaults applied when Config leaves the quotas zero.
const (
	DefaultMaxPerTenant      = 16
	DefaultMaxBytesPerTenant = 1 << 20
)

// indexKind and indexKey locate the persisted registry index in the
// artifact store. The index is one JSON blob rewritten per mutation:
// registrations are small (quota-bounded), and a single blob keeps the
// load path one read and the crash semantics one atomic rename.
const (
	indexKind = "registry"
	indexKey  = "index"
)

// Config parameterizes New.
type Config struct {
	// MaxPerTenant bounds the number of workloads one tenant may hold;
	// zero means DefaultMaxPerTenant.
	MaxPerTenant int
	// MaxBytesPerTenant bounds the summed encoded-profile bytes one
	// tenant may hold; zero means DefaultMaxBytesPerTenant.
	MaxBytesPerTenant int64
	// Store, when non-nil, persists the registry index so
	// registrations survive daemon restarts.
	Store *artifact.Store
}

// Entry is one registered workload.
type Entry struct {
	// Name is the registered name; Profile.Name always equals it.
	Name string
	// Tenant owns the entry; only the owner may replace or delete it.
	Tenant string
	// Hash is the profile's workload content hash (name-independent).
	Hash string
	// Bytes is the canonical encoded size charged against the byte
	// quota.
	Bytes int64
	// Profile is the validated profile.
	Profile workload.Profile
}

// Usage is one tenant's quota consumption.
type Usage struct {
	Count int
	Bytes int64
}

// Registry is the named-workload table. Safe for concurrent use. A nil
// *Registry is valid and empty: lookups miss and mutations fail with
// ErrQuota-free internal errors — callers that support registration
// construct one via New.
type Registry struct {
	maxPerTenant int
	maxBytes     int64
	store        *artifact.Store

	mu      sync.RWMutex
	entries map[string]*Entry // by name

	registers, deletes, rejects, persistErrors metrics.Counter
}

// New builds an empty registry with cfg's quotas (defaults applied).
// Call Load afterwards to restore persisted registrations.
func New(cfg Config) *Registry {
	if cfg.MaxPerTenant <= 0 {
		cfg.MaxPerTenant = DefaultMaxPerTenant
	}
	if cfg.MaxBytesPerTenant <= 0 {
		cfg.MaxBytesPerTenant = DefaultMaxBytesPerTenant
	}
	return &Registry{
		maxPerTenant: cfg.MaxPerTenant,
		maxBytes:     cfg.MaxBytesPerTenant,
		store:        cfg.Store,
		entries:      make(map[string]*Entry),
	}
}

// ValidName reports whether s is usable as a workload name or tenant
// id: 1–64 characters from [a-zA-Z0-9._-]. The charset excludes ':'
// and '|' (used as separators inside content IDs) and anything that
// needs escaping in a URL path or a Prometheus label.
func ValidName(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// isBuiltin reports whether name is one of the built-in profiles.
func isBuiltin(name string) bool {
	_, err := workload.ByName(name)
	return err == nil
}

// encodedSize returns the canonical encoded size of a profile — what
// the byte quota charges. Profile's MarshalJSON is deterministic
// (json.Marshal sorts the mix map's keys), so the same profile always
// costs the same bytes.
func encodedSize(prof workload.Profile) (int64, error) {
	b, err := json.Marshal(prof)
	if err != nil {
		return 0, fmt.Errorf("registry: encode profile: %w", err)
	}
	return int64(len(b)), nil
}

// Register validates and stores prof under name for tenant, replacing
// any previous entry the same tenant registered under that name. An
// empty prof.Name is filled from name; a non-empty prof.Name must
// equal name (the name is identity, and the generator stamps it into
// trace metadata). Returns the stored entry.
func (r *Registry) Register(tenant, name string, prof workload.Profile) (Entry, error) {
	if !ValidName(name) {
		r.rejects.Inc()
		return Entry{}, fmt.Errorf("registry: invalid workload name %q (need 1-64 chars of [a-zA-Z0-9._-])", name)
	}
	if !ValidName(tenant) {
		r.rejects.Inc()
		return Entry{}, fmt.Errorf("registry: invalid tenant %q (need 1-64 chars of [a-zA-Z0-9._-])", tenant)
	}
	if isBuiltin(name) {
		r.rejects.Inc()
		return Entry{}, fmt.Errorf("%w: %q", ErrBuiltin, name)
	}
	if prof.Name == "" {
		prof.Name = name
	}
	if prof.Name != name {
		r.rejects.Inc()
		return Entry{}, fmt.Errorf("registry: profile name %q does not match workload name %q", prof.Name, name)
	}
	if err := prof.Validate(); err != nil {
		r.rejects.Inc()
		return Entry{}, err
	}
	size, err := encodedSize(prof)
	if err != nil {
		r.rejects.Inc()
		return Entry{}, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.entries[name]
	if prev != nil && prev.Tenant != tenant {
		r.rejects.Inc()
		return Entry{}, fmt.Errorf("%w: %q", ErrOwned, name)
	}
	count, bytes := r.usageLocked(tenant)
	if prev != nil {
		count--
		bytes -= prev.Bytes
	}
	if count+1 > r.maxPerTenant || bytes+size > r.maxBytes {
		r.rejects.Inc()
		return Entry{}, fmt.Errorf("%w: tenant %q at %d/%d workloads, %d/%d bytes, adding %d",
			ErrQuota, tenant, count, r.maxPerTenant, bytes, r.maxBytes, size)
	}
	e := &Entry{Name: name, Tenant: tenant, Hash: prof.ContentHash(), Bytes: size, Profile: prof}
	r.entries[name] = e
	r.registers.Inc()
	r.persistLocked()
	return *e, nil
}

// Delete removes tenant's entry under name. Deleting a name owned by
// another tenant fails with ErrOwned; a missing name with ErrNotFound.
func (r *Registry) Delete(tenant, name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[name]
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if e.Tenant != tenant {
		return fmt.Errorf("%w: %q", ErrOwned, name)
	}
	delete(r.entries, name)
	r.deletes.Inc()
	r.persistLocked()
	return nil
}

// Get returns the entry registered under name.
func (r *Registry) Get(name string) (Entry, bool) {
	if r == nil {
		return Entry{}, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	e := r.entries[name]
	if e == nil {
		return Entry{}, false
	}
	return *e, true
}

// Snapshot resolves name to its current profile and content hash. It
// is the lookup hook the experiment suite and the server's request
// normalization use; the profile is returned by value so later
// re-registrations cannot mutate an in-flight computation.
func (r *Registry) Snapshot(name string) (workload.Profile, string, bool) {
	if r == nil {
		return workload.Profile{}, "", false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	e := r.entries[name]
	if e == nil {
		return workload.Profile{}, "", false
	}
	return e.Profile, e.Hash, true
}

// WorkloadContent reports the content hash registered under name; it
// makes the registry a reqkey.Resolver, so canonical cache keys for
// requests naming registered workloads embed the profile content.
func (r *Registry) WorkloadContent(name string) (string, bool) {
	_, hash, ok := r.Snapshot(name)
	return hash, ok
}

// List returns every entry sorted by name.
func (r *Registry) List() []Entry {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// usageLocked sums tenant's quota consumption; r.mu must be held.
func (r *Registry) usageLocked(tenant string) (count int, bytes int64) {
	for _, e := range r.entries {
		if e.Tenant == tenant {
			count++
			bytes += e.Bytes
		}
	}
	return count, bytes
}

// TenantUsage returns per-tenant quota consumption, for /metrics.
func (r *Registry) TenantUsage() map[string]Usage {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]Usage)
	for _, e := range r.entries {
		u := out[e.Tenant]
		u.Count++
		u.Bytes += e.Bytes
		out[e.Tenant] = u
	}
	return out
}

// Stats reports the registry's lifetime counters.
func (r *Registry) Stats() (registers, deletes, rejects, persistErrors int64) {
	if r == nil {
		return 0, 0, 0, 0
	}
	return r.registers.Load(), r.deletes.Load(), r.rejects.Load(), r.persistErrors.Load()
}

// Quotas returns the effective per-tenant limits.
func (r *Registry) Quotas() (maxPerTenant int, maxBytesPerTenant int64) {
	return r.maxPerTenant, r.maxBytes
}

// indexFile is the persisted registry index.
type indexFile struct {
	Version int          `json:"version"`
	Entries []indexEntry `json:"entries"`
}

type indexEntry struct {
	Tenant  string           `json:"tenant"`
	Name    string           `json:"name"`
	Profile workload.Profile `json:"profile"`
}

// persistLocked rewrites the index blob in the artifact store; r.mu
// must be held. Persistence is best-effort — the registry is
// authoritative in memory, and a failed write costs re-registration
// after a restart, not correctness — so failures are counted, not
// returned.
func (r *Registry) persistLocked() {
	if r.store == nil {
		return
	}
	idx := indexFile{Version: 1}
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := r.entries[name]
		idx.Entries = append(idx.Entries, indexEntry{Tenant: e.Tenant, Name: e.Name, Profile: e.Profile})
	}
	blob, err := json.Marshal(idx)
	if err == nil {
		err = r.store.Put(indexKind, indexKey, blob)
	}
	if err != nil {
		r.persistErrors.Inc()
	}
}

// Load restores registrations persisted by a previous process.
// Entries that no longer validate (e.g. after a Validate tightening or
// a built-in name addition) are skipped, not fatal: the rest of the
// registry stays usable and skipped entries surface as 404s the tenant
// can re-register. Returns the number of entries restored.
func (r *Registry) Load() (int, error) {
	if r.store == nil {
		return 0, nil
	}
	blob, ok := r.store.Get(indexKind, indexKey)
	if !ok {
		return 0, nil
	}
	var idx indexFile
	if err := json.Unmarshal(blob, &idx); err != nil {
		return 0, fmt.Errorf("registry: decode persisted index: %w", err)
	}
	if idx.Version != 1 {
		return 0, fmt.Errorf("registry: persisted index version %d, want 1", idx.Version)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	restored := 0
	for _, ie := range idx.Entries {
		if !ValidName(ie.Name) || !ValidName(ie.Tenant) || isBuiltin(ie.Name) {
			continue
		}
		prof := ie.Profile
		if prof.Name != ie.Name || prof.Validate() != nil {
			continue
		}
		size, err := encodedSize(prof)
		if err != nil {
			continue
		}
		// Hashes are recomputed, never trusted from disk: the hash is a
		// cache-correctness input, and GenVersion-style drift must show
		// up here, not in a stale served result.
		r.entries[ie.Name] = &Entry{
			Name: ie.Name, Tenant: ie.Tenant,
			Hash: prof.ContentHash(), Bytes: size, Profile: prof,
		}
		restored++
	}
	return restored, nil
}
