// Quickstart: the complete first-order modeling pipeline on one workload.
//
// It walks the paper's §5 procedure end to end:
//
//  1. generate a synthetic SPECint-like instruction trace,
//  2. measure the IW characteristic and fit the power law (Table 1),
//  3. gather miss-event statistics by functional trace analysis,
//  4. run the analytical model (equations 1–8), and
//  5. check it against the detailed cycle-level simulator.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fomodel/internal/core"
	"fomodel/internal/iw"
	"fomodel/internal/stats"
	"fomodel/internal/uarch"
	"fomodel/internal/workload"
)

func main() {
	const (
		bench = "gzip"
		n     = 200000
		seed  = 1
	)

	// 1. Synthesize the dynamic instruction trace.
	tr, err := workload.Generate(bench, n, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d dynamic instructions\n", bench, tr.Len())

	// 2. IW characteristic: idealized window-limited simulation, then the
	// power-law fit of the paper's Table 1.
	points, err := iw.Characteristic(tr, iw.DefaultWindows(), iw.Options{})
	if err != nil {
		log.Fatal(err)
	}
	law, err := iw.Fit(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IW power law: I = %.2f * W^%.2f  (R² %.3f)\n", law.Alpha, law.Beta, law.R2)

	// 3. Functional trace analysis: cache and predictor miss rates plus
	// the long-miss clustering distribution.
	scfg := stats.DefaultConfig()
	scfg.Warmup = true
	sum, err := stats.Analyze(tr, scfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("avg latency L = %.2f, mispredicts %.2f%%/branch, long D-misses %.2f/k-instr (overlap %.2f)\n",
		sum.AvgLatency, 100*sum.MispredictRate(),
		1000*sum.DCacheLongPerInstr(), sum.OverlapFactor())

	// 4. The first-order model on the paper's baseline machine.
	machine := core.DefaultMachine()
	inputs, err := core.InputsFromCurve(law, points, machine.WindowSize, sum)
	if err != nil {
		log.Fatal(err)
	}
	est, err := machine.Estimate(inputs, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel CPI stack:\n")
	fmt.Printf("  steady state   %.3f\n", est.SteadyCPI)
	fmt.Printf("  branch misp.   %.3f  (%.1f cycles/event)\n", est.BranchCPI, est.BranchPenalty)
	fmt.Printf("  L1 I-cache     %.3f  (%.1f cycles/event)\n", est.ICacheShortCPI, est.ICacheShortPenalty)
	fmt.Printf("  L2 I-cache     %.3f\n", est.ICacheLongCPI)
	fmt.Printf("  long D-miss    %.3f  (%.1f cycles/event)\n", est.DCacheCPI, est.DCachePenalty)
	fmt.Printf("  total          %.3f\n", est.CPI)

	// 5. Detailed simulation for reference.
	r, err := uarch.Simulate(tr, uarch.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetailed simulator CPI: %.3f  → model error %+.1f%%\n",
		r.CPI(), 100*(est.CPI-r.CPI())/r.CPI())
}
