package stats_test

import (
	"sync"
	"testing"

	"fomodel/internal/stats"
	"fomodel/internal/trace"
	"fomodel/internal/workload"
)

var (
	benchTraceOnce sync.Once
	benchTraceVal  *trace.Trace
)

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	benchTraceOnce.Do(func() {
		t, err := workload.Generate("gzip", 50000, 1)
		if err != nil {
			panic(err)
		}
		benchTraceVal = t
	})
	return benchTraceVal
}

// BenchmarkAnalyze times the functional trace analysis that feeds the
// analytical model (caches, predictor, dependence and miss statistics).
func BenchmarkAnalyze(b *testing.B) {
	t := benchTrace(b)
	cfg := stats.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Analyze(t, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
