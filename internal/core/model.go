// Package core implements the paper's contribution: the first-order
// analytical superscalar performance model. Overall performance is
//
//	CPI = CPI_steadystate + CPI_brmisp + CPI_icachemiss + CPI_dcachemiss  (1)
//
// where the steady-state term comes from the power-law IW characteristic
// adjusted by Little's law and clipped at the machine issue width (§3), and
// each miss-event term is (events/instruction) × (penalty/event) with the
// penalties of equations (2)–(8):
//
//	branch (2,3):  win_drain + ΔP + ramp_up        (÷ burst for clusters)
//	I-cache (4,5): ΔI + ramp_up − win_drain        (≈ ΔI; depth-independent)
//	D-cache (6–8): ΔD × Σ f_LDM(i)/i               (overlap within the ROB)
//
// The drain and ramp-up terms are computed by discrete integration of the
// IW characteristic — the same leaky-bucket recurrence the authors iterated
// in a spreadsheet for their Fig. 8 (see transient.go).
package core

import (
	"fmt"
	"math"

	"fomodel/internal/isa"
)

// Machine holds the microarchitecture parameters of the modeled processor.
type Machine struct {
	// Width is the fetch/dispatch/issue/retire width i.
	Width int
	// FrontEndDepth is ΔP, the front-end pipeline depth in stages.
	FrontEndDepth int
	// WindowSize is the issue-window capacity.
	WindowSize int
	// ROBSize is the reorder-buffer capacity.
	ROBSize int
	// ShortMissLatency is the L2 access latency (ΔI for L1 misses).
	ShortMissLatency int
	// LongMissLatency is the memory latency (ΔD, and the penalty charged
	// to fetches that miss in the L2).
	LongMissLatency int

	// FUCounts, when any entry is positive, limits per-cycle issue of
	// that class (paper §7 extension #1). The model lowers the
	// saturation level to min over limited classes of count/mix — the
	// paper's "lower saturation level than the maximum issue width".
	// Requires Inputs.Mix.
	FUCounts [isa.NumClasses]int

	// FetchBuffer is the number of fetch-buffer entries beyond the
	// front-end pipeline (paper §7 extension #2); the model credits the
	// I-cache miss penalty with the FetchBuffer/Width cycles the buffer
	// can cover while draining.
	FetchBuffer int

	// TLBMissLatency is the data-TLB page-walk time (paper §7 extension
	// #4); TLB misses are charged like long data misses. Zero disables
	// the term.
	TLBMissLatency int

	// Clusters and BypassLatency model partitioned issue windows (paper
	// §7 extension #3). With round-robin steering a fraction
	// (Clusters−1)/Clusters of dependence edges cross clusters and pay
	// the bypass, so the model inflates the average latency to
	// L + BypassLatency·(Clusters−1)/Clusters. Clusters ≤ 1 means a
	// unified window.
	Clusters      int
	BypassLatency int
}

// DefaultMachine returns the paper's baseline machine.
func DefaultMachine() Machine {
	return Machine{
		Width:            4,
		FrontEndDepth:    5,
		WindowSize:       48,
		ROBSize:          128,
		ShortMissLatency: 8,
		LongMissLatency:  200,
	}
}

// Validate reports the first structural problem with the machine.
func (m Machine) Validate() error {
	switch {
	case m.Width < 1:
		return fmt.Errorf("core: width %d < 1", m.Width)
	case m.FrontEndDepth < 1:
		return fmt.Errorf("core: front-end depth %d < 1", m.FrontEndDepth)
	case m.WindowSize < 1:
		return fmt.Errorf("core: window size %d < 1", m.WindowSize)
	case m.ROBSize < 1:
		return fmt.Errorf("core: ROB size %d < 1", m.ROBSize)
	case m.ShortMissLatency < 0 || m.LongMissLatency < 0:
		return fmt.Errorf("core: negative miss latencies (%d, %d)", m.ShortMissLatency, m.LongMissLatency)
	case m.FetchBuffer < 0:
		return fmt.Errorf("core: negative fetch buffer %d", m.FetchBuffer)
	case m.TLBMissLatency < 0:
		return fmt.Errorf("core: negative TLB miss latency %d", m.TLBMissLatency)
	case m.Clusters > 1 && m.BypassLatency < 0:
		return fmt.Errorf("core: negative bypass latency %d", m.BypassLatency)
	}
	for c, n := range m.FUCounts {
		if n < 0 {
			return fmt.Errorf("core: negative FU count %d for %v", n, isa.Class(c))
		}
	}
	return nil
}

// Inputs holds the program statistics the model consumes. All of them come
// from functional trace analysis (packages iw and stats) — no detailed
// simulation is required.
type Inputs struct {
	// Name identifies the workload.
	Name string
	// Alpha and Beta are the unit-latency IW power-law parameters
	// (I = Alpha·W^Beta), fitted from idealized window-limited trace
	// simulation (paper Table 1).
	Alpha, Beta float64
	// AvgLatency is L: the mix-weighted mean execution latency including
	// short data-cache misses folded in (Table 1, third column).
	AvgLatency float64
	// MispredictsPerInstr is branch mispredictions per dynamic
	// instruction under the modeled predictor.
	MispredictsPerInstr float64
	// ICacheShortPerInstr / ICacheLongPerInstr are instruction fetches
	// per dynamic instruction missing L1-I and hitting / missing L2.
	ICacheShortPerInstr float64
	ICacheLongPerInstr  float64
	// DCacheLongPerInstr is long (L2) data misses per dynamic instruction.
	DCacheLongPerInstr float64
	// OverlapFactor is Σ_i f_LDM(i)/i from the long-miss cluster
	// distribution within the ROB (equation 8); 1 when every long miss is
	// isolated.
	OverlapFactor float64
	// Mix is the dynamic instruction-class composition; only needed when
	// the machine limits functional units (Machine.FUCounts).
	Mix [isa.NumClasses]float64
	// BranchBurstFactor is the measured Σ f_misp(i)/i of misprediction
	// bursts, used by BranchMeasured; 0 is treated as 1 (all isolated).
	BranchBurstFactor float64
	// TLBMissesPerInstr is data-TLB misses per dynamic instruction and
	// TLBOverlapFactor its equation-(8) overlap multiplier; both are
	// ignored unless the machine sets TLBMissLatency.
	TLBMissesPerInstr float64
	TLBOverlapFactor  float64
	// MeasuredSteadyIPC, when positive, overrides the power-law +
	// Little's-law steady state with a directly measured IW point: the
	// idealized window-limited issue rate at the machine's window size
	// with real instruction latencies. The paper relies on the machine
	// being in the saturated part of the curve, where fit and measurement
	// agree; for an unsaturated low-ILP workload (the paper's vpr
	// outlier) the measured point avoids compounding the fit error with
	// the Little's-law approximation. The transient integrations always
	// use the power law.
	MeasuredSteadyIPC float64
}

// Validate reports the first structural problem with the inputs.
func (in Inputs) Validate() error {
	switch {
	case in.Alpha <= 0:
		return fmt.Errorf("core: alpha %v <= 0", in.Alpha)
	case in.Beta <= 0 || in.Beta > 1.5:
		return fmt.Errorf("core: beta %v outside (0, 1.5]", in.Beta)
	case in.AvgLatency < 1:
		return fmt.Errorf("core: average latency %v < 1", in.AvgLatency)
	case in.MispredictsPerInstr < 0 || in.MispredictsPerInstr > 1:
		return fmt.Errorf("core: mispredicts/instr %v outside [0,1]", in.MispredictsPerInstr)
	case in.ICacheShortPerInstr < 0 || in.ICacheLongPerInstr < 0:
		return fmt.Errorf("core: negative I-cache miss rates")
	case in.DCacheLongPerInstr < 0:
		return fmt.Errorf("core: negative D-cache long miss rate")
	case in.OverlapFactor < 0 || in.OverlapFactor > 1:
		return fmt.Errorf("core: overlap factor %v outside [0,1]", in.OverlapFactor)
	case in.MeasuredSteadyIPC < 0:
		return fmt.Errorf("core: measured steady IPC %v < 0", in.MeasuredSteadyIPC)
	case in.TLBMissesPerInstr < 0 || in.TLBMissesPerInstr > 1:
		return fmt.Errorf("core: TLB misses/instr %v outside [0,1]", in.TLBMissesPerInstr)
	case in.TLBOverlapFactor < 0 || in.TLBOverlapFactor > 1:
		return fmt.Errorf("core: TLB overlap factor %v outside [0,1]", in.TLBOverlapFactor)
	case in.BranchBurstFactor < 0 || in.BranchBurstFactor > 1:
		return fmt.Errorf("core: branch burst factor %v outside [0,1]", in.BranchBurstFactor)
	}
	return nil
}

// BranchPenaltyMode selects how the branch misprediction penalty is
// derived from the transient analysis.
type BranchPenaltyMode int

const (
	// BranchMidpoint is the paper's §5 evaluation choice: the average of
	// the isolated penalty (drain + ΔP + ramp-up) and the fully clustered
	// bound (ΔP) — "the average of 5 and 10 cycles (i.e. 7.5)" for the
	// baseline machine.
	BranchMidpoint BranchPenaltyMode = iota
	// BranchIsolated uses the isolated upper bound of equation (2).
	BranchIsolated
	// BranchBurst uses equation (3) with Options.BurstLength consecutive
	// mispredictions.
	BranchBurst
	// BranchMeasured uses equation (3) with the *measured* burst-size
	// distribution (Inputs.BranchBurstFactor) — the paper's §7
	// refinement #3: "collect secondary branch misprediction statistics
	// to better model bursty behavior".
	BranchMeasured
)

// Options tune secondary model choices; the zero value selects the paper's
// defaults via (Options).withDefaults.
type Options struct {
	// BranchMode selects the branch penalty derivation (default:
	// BranchMidpoint, the paper's §5 step 2).
	BranchMode BranchPenaltyMode
	// BurstLength is n in equation (3), used by BranchBurst.
	BurstLength int
	// RampEpsilon ends ramp-up integration once the issue rate reaches
	// (1−RampEpsilon)·steady. 0.05 reproduces the paper's Fig. 8 numbers
	// (drain 2.1, ramp-up 2.7 for α=1, β=0.5, ΔP=5, width 4).
	RampEpsilon float64
	// SmoothSaturation replaces the hard clip min(width, curve) with a
	// harmonic soft-min — an ablation of the saturation approximation.
	SmoothSaturation bool
	// FetchBufferCoverage scales the fetch buffer's I-cache-miss hiding
	// (Machine.FetchBuffer): clustered misses strike before the buffer
	// has rebuilt, so only a fraction of misses — estimated from the
	// miss-gap distribution (stats.Summary.IsolatedICacheFrac) — benefit.
	// Zero means 1 (every miss fully covered).
	FetchBufferCoverage float64
}

func (o Options) withDefaults() Options {
	if o.RampEpsilon == 0 {
		o.RampEpsilon = 0.05
	}
	if o.FetchBufferCoverage == 0 {
		o.FetchBufferCoverage = 1
	}
	if o.BurstLength == 0 {
		o.BurstLength = 2
	}
	return o
}

// Estimate is the model's full output for one workload on one machine.
type Estimate struct {
	// SteadyIPC is the sustainable background issue rate; SteadyCPI its
	// reciprocal (the CPI_steadystate term).
	SteadyIPC float64
	SteadyCPI float64

	// Drain and RampUp are the window-drain and ramp-up transient costs
	// in cycles, from discrete integration of the IW characteristic.
	Drain  float64
	RampUp float64

	// BranchPenalty, ICacheShortPenalty, ICacheLongPenalty, and
	// DCachePenalty are cycles per miss-event.
	BranchPenalty      float64
	ICacheShortPenalty float64
	ICacheLongPenalty  float64
	DCachePenalty      float64

	// TLBPenalty and TLBCPI extend equation (1) with the §7 TLB term
	// (zero without a configured TLB).
	TLBPenalty float64
	TLBCPI     float64

	// EffectiveWidth is the saturation level after functional-unit
	// limits; equals the issue width for an unbounded machine.
	EffectiveWidth float64

	// BranchCPI, ICacheShortCPI, ICacheLongCPI, DCacheCPI are the
	// per-instruction CPI adders of equation (1); CPI is their sum with
	// SteadyCPI (plus TLBCPI when modeled).
	BranchCPI      float64
	ICacheShortCPI float64
	ICacheLongCPI  float64
	DCacheCPI      float64
	CPI            float64
}

// IPC returns the modeled instructions per cycle.
func (e Estimate) IPC() float64 {
	if e.CPI == 0 {
		return 0
	}
	return 1 / e.CPI
}

// EffectiveWidth returns the machine's saturation level: the issue width,
// lowered by any functional-unit limit to min over limited classes of
// count/mix (a class consuming mix fraction m of the stream needs
// IPC·m ≤ count to sustain IPC on fully pipelined units).
func (m Machine) EffectiveWidth(in Inputs) float64 {
	eff := float64(m.Width)
	for c, n := range m.FUCounts {
		if n <= 0 || in.Mix[c] <= 0 {
			continue
		}
		if limit := float64(n) / in.Mix[c]; limit < eff {
			eff = limit
		}
	}
	return eff
}

// EffectiveLatency returns the average latency after the clustering
// bypass inflation (see Machine.Clusters); equal to Inputs.AvgLatency for
// a unified window.
func (m Machine) EffectiveLatency(in Inputs) float64 {
	if m.Clusters <= 1 {
		return in.AvgLatency
	}
	cross := float64(m.Clusters-1) / float64(m.Clusters)
	return in.AvgLatency + float64(m.BypassLatency)*cross
}

// Curve returns the latency-adjusted IW characteristic of the inputs on
// machine m: issue rate as a function of window occupancy, clipped at the
// effective issue width (or softly saturated under
// Options.SmoothSaturation).
func (m Machine) Curve(in Inputs, opts Options) IWCurve {
	return IWCurve{
		Alpha:  in.Alpha,
		Beta:   in.Beta,
		L:      m.EffectiveLatency(in),
		Width:  m.EffectiveWidth(in),
		Smooth: opts.SmoothSaturation,
	}
}

// SteadyStateIPC returns the sustainable issue rate with no miss-events:
// the IW curve evaluated at the full window, clipped at the issue width
// (§3: the unlimited-width power law until saturation, per Jouppi). A
// measured IW point, when provided, takes precedence over the fit (see
// Inputs.MeasuredSteadyIPC).
func (m Machine) SteadyStateIPC(in Inputs, opts Options) float64 {
	if in.MeasuredSteadyIPC > 0 {
		// The measured point was taken on a unified window; rescale by
		// the clustering latency inflation per Little's law.
		measured := in.MeasuredSteadyIPC * in.AvgLatency / m.EffectiveLatency(in)
		return math.Min(measured, m.EffectiveWidth(in))
	}
	return m.Curve(in, opts).Eval(float64(m.WindowSize))
}

// Estimate runs the complete first-order model: steady state plus the
// miss-event penalties of §4, composed per equation (1).
func (m Machine) Estimate(in Inputs, opts Options) (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	if err := in.Validate(); err != nil {
		return Estimate{}, err
	}
	opts = opts.withDefaults()
	curve := m.Curve(in, opts)

	var e Estimate
	e.EffectiveWidth = m.EffectiveWidth(in)
	e.SteadyIPC = m.SteadyStateIPC(in, opts)
	if e.SteadyIPC <= 0 {
		return Estimate{}, fmt.Errorf("core: non-positive steady-state IPC for %q", in.Name)
	}
	e.SteadyCPI = 1 / e.SteadyIPC

	e.Drain = curve.Drain(float64(m.WindowSize), e.SteadyIPC)
	e.RampUp = curve.RampUp(e.SteadyIPC, opts.RampEpsilon)

	// Branch misprediction penalty, equations (2) and (3).
	isolated := e.Drain + float64(m.FrontEndDepth) + e.RampUp
	switch opts.BranchMode {
	case BranchIsolated:
		e.BranchPenalty = isolated
	case BranchBurst:
		e.BranchPenalty = float64(m.FrontEndDepth) + (e.Drain+e.RampUp)/float64(opts.BurstLength)
	case BranchMeasured:
		factor := in.BranchBurstFactor
		if factor == 0 {
			factor = 1
		}
		e.BranchPenalty = float64(m.FrontEndDepth) + (e.Drain+e.RampUp)*factor
	default: // BranchMidpoint, the paper's §5 step 2.
		e.BranchPenalty = (isolated + float64(m.FrontEndDepth)) / 2
	}

	// I-cache miss penalty, equation (4): ΔI + ramp_up − win_drain. The
	// offsetting terms make it ≈ the miss delay and independent of ΔP.
	// A fetch buffer keeps the window fed for FetchBuffer/width extra
	// cycles, hiding that much of the delay for the misses that find it
	// rebuilt (§7 extension #2).
	bufferHide := float64(m.FetchBuffer) / float64(m.Width) * opts.FetchBufferCoverage
	icacheAdj := e.RampUp - e.Drain - bufferHide
	e.ICacheShortPenalty = math.Max(0, float64(m.ShortMissLatency)+icacheAdj)
	e.ICacheLongPenalty = math.Max(0, float64(m.LongMissLatency)+icacheAdj)

	// Long data miss penalty, equation (8): the isolated penalty is ≈ ΔD
	// (§4.3: the missing load is old when it issues, so rob_fill ≈ 0 and
	// drain/ramp offset), scaled by the overlap factor Σ f(i)/i.
	e.DCachePenalty = float64(m.LongMissLatency) * in.OverlapFactor

	// TLB misses act like long data misses (§7 extension #4).
	if m.TLBMissLatency > 0 && in.TLBMissesPerInstr > 0 {
		overlap := in.TLBOverlapFactor
		if overlap == 0 {
			overlap = 1
		}
		e.TLBPenalty = float64(m.TLBMissLatency) * overlap
		e.TLBCPI = in.TLBMissesPerInstr * e.TLBPenalty
	}

	e.BranchCPI = in.MispredictsPerInstr * e.BranchPenalty
	e.ICacheShortCPI = in.ICacheShortPerInstr * e.ICacheShortPenalty
	e.ICacheLongCPI = in.ICacheLongPerInstr * e.ICacheLongPenalty
	e.DCacheCPI = in.DCacheLongPerInstr * e.DCachePenalty
	e.CPI = e.SteadyCPI + e.BranchCPI + e.ICacheShortCPI + e.ICacheLongCPI + e.DCacheCPI + e.TLBCPI
	return e, nil
}
