// The tests here live in the external test package so they can import
// internal/cli (which itself imports internal/server) without a cycle:
// they pin the PR's central invariant, that a daemon response is
// byte-equivalent in content to the corresponding CLI run.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fomodel/internal/cli"
	"fomodel/internal/experiments"
	"fomodel/internal/server"
)

const equivN = 30000

// TestPredictMatchesCLI asserts that POST /v1/predict returns exactly
// the bytes `fomodel -json` prints for the same workload and machine.
func TestPredictMatchesCLI(t *testing.T) {
	cases := []struct {
		name    string
		cliArgs []string
		reqBody string
	}{
		{
			"defaults with sim",
			[]string{"-json", "-sim", "-n", "30000", "gzip"},
			`{"bench":"gzip","sim":true}`,
		},
		{
			"custom machine",
			[]string{"-json", "-n", "30000", "-width", "8", "-window", "96", "-rob", "256", "-branch-mode", "isolated", "mcf"},
			`{"bench":"mcf","machine":{"width":8,"window":96,"rob":256},"branch_mode":"isolated"}`,
		},
		{
			"clustered with fu limits",
			[]string{"-json", "-n", "30000", "-clusters", "2", "-bypass", "2", "-fu", "mul=1,load=2", "-tlb", "vortex"},
			`{"bench":"vortex","machine":{"clusters":2,"bypass":2,"fu":"mul=1,load=2","tlb":true}}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want bytes.Buffer
			if err := cli.Fomodel(context.Background(), tc.cliArgs, &want); err != nil {
				t.Fatalf("cli: %v", err)
			}
			srv := server.New(server.Config{N: equivN}, nil)
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(tc.reqBody))
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("server: status = %d\nbody: %s", rec.Code, rec.Body.String())
			}
			if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
				t.Errorf("server response differs from CLI output\nserver:\n%s\ncli:\n%s",
					rec.Body.String(), want.String())
			}
		})
	}
}

// TestSweepMatchesEngine asserts that POST /v1/sweep returns exactly
// the table and CSV the experiments engine renders for the same spec.
func TestSweepMatchesEngine(t *testing.T) {
	spec := experiments.SweepSpec{
		Param:   "width",
		Benches: []string{"gzip", "mcf"},
		Values:  []int{2, 4},
	}
	want, err := experiments.Sweep(context.Background(), experiments.NewSuite(equivN, 1), spec)
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(server.Config{N: equivN}, nil)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("server: status = %d\nbody: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		experiments.SweepResult
		Render string `json:"render"`
		CSV    string `json:"csv"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Render != want.Render() {
		t.Errorf("rendered table differs\nserver:\n%s\nengine:\n%s", resp.Render, want.Render())
	}
	if resp.CSV != want.CSV() {
		t.Errorf("CSV differs\nserver:\n%s\nengine:\n%s", resp.CSV, want.CSV())
	}
	if len(resp.Points) != len(want.Points) || resp.MeanAbsErr != want.MeanAbsErr {
		t.Errorf("structured points differ: %d points mean %g, want %d points mean %g",
			len(resp.Points), resp.MeanAbsErr, len(want.Points), want.MeanAbsErr)
	}
}
