package sampling

import (
	"math"
	"testing"

	"fomodel/internal/trace"
	"fomodel/internal/uarch"
	"fomodel/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{WindowLen: 0, Period: 10}).Validate(); err == nil {
		t.Fatal("zero window accepted")
	}
	if err := (Config{WindowLen: 100, Period: 50}).Validate(); err == nil {
		t.Fatal("period below window accepted")
	}
}

func TestEstimateErrors(t *testing.T) {
	cfg := uarch.DefaultConfig()
	if _, err := Estimate(&trace.Trace{Name: "empty"}, cfg, DefaultConfig()); err == nil {
		t.Fatal("empty trace accepted")
	}
	tr, err := workload.Generate("gzip", 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Width = 0
	if _, err := Estimate(tr, bad, DefaultConfig()); err == nil {
		t.Fatal("invalid machine accepted")
	}
	if _, err := Estimate(tr, cfg, Config{WindowLen: 10, Period: 5}); err == nil {
		t.Fatal("invalid sampling config accepted")
	}
}

func TestFullSamplingMatchesReference(t *testing.T) {
	// Period == WindowLen times every instruction; the only differences
	// from the reference run are the per-window pipeline restarts.
	tr, err := workload.Generate("gzip", 60000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	ref, err := uarch.Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Estimate(tr, cfg, Config{WindowLen: 60010, Period: 60010})
	if err != nil {
		t.Fatal(err)
	}
	if full.Windows != 1 || full.SampledInstructions != tr.Len() {
		t.Fatalf("full sampling: %d windows, %d instrs", full.Windows, full.SampledInstructions)
	}
	if e := math.Abs(full.CPI-ref.CPI()) / ref.CPI(); e > 0.01 {
		t.Fatalf("single-window CPI %v vs reference %v (err %v)", full.CPI, ref.CPI(), e)
	}
}

func TestPeriodicSamplingAccuracy(t *testing.T) {
	// Use several windows spread across the trace: a single head window
	// would over-weight the cold-start region (the warm working set's
	// compulsory misses concentrate there).
	tr, err := workload.Generate("bzip", 150000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	ref, err := uarch.Simulate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Estimate(tr, cfg, Config{WindowLen: 3000, Period: 15000})
	if err != nil {
		t.Fatal(err)
	}
	if frac := r.SampledFraction(); frac > 0.25 {
		t.Fatalf("sampled fraction %v, want ~0.2", frac)
	}
	if r.Windows < 8 {
		t.Fatalf("only %d windows sampled", r.Windows)
	}
	if e := math.Abs(r.CPI-ref.CPI()) / ref.CPI(); e > 0.20 {
		t.Fatalf("sampled CPI %v vs reference %v (err %v)", r.CPI, ref.CPI(), e)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	tr, err := workload.Generate("gzip", 30000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	a, err := Estimate(tr, cfg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(tr, cfg, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.CPI != b.CPI || a.Windows != b.Windows {
		t.Fatal("sampling not deterministic")
	}
}
