package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"fomodel/internal/experiments"
)

// maxBatchItems bounds one /v1/batch request. A batch occupies a single
// admission slot regardless of size, so the item bound (together with
// the worker pool) is what keeps one request from monopolizing the
// server.
const maxBatchItems = 256

// maxBatchBodyBytes bounds the /v1/batch request body; a full batch of
// maxBatchItems small JSON objects fits comfortably.
const maxBatchBodyBytes = 1 << 20

// BatchRequest is the /v1/batch body: many independent predict requests
// evaluated in one round trip.
type BatchRequest struct {
	Items []PredictRequest `json:"items"`
}

// BatchItem is one item's outcome. Items are isolated: a bad or failing
// item reports its status and error in place while the others complete
// normally.
type BatchItem struct {
	// Status is the HTTP status the equivalent /v1/predict call would
	// have returned for this item.
	Status int `json:"status"`
	// Cache is "hit" or "miss" for 200 items — the item's own
	// response-cache participation, shared with /v1/predict.
	Cache string `json:"cache,omitempty"`
	// Body holds, for 200 items, the exact bytes of the equivalent
	// /v1/predict response (indented JSON, trailing newline included),
	// so batch and single-shot consumers can never observe different
	// predictions for the same request.
	Body string `json:"body,omitempty"`
	// Error is the error message for non-200 items.
	Error string `json:"error,omitempty"`
}

// BatchResponse is the /v1/batch body: one result per request item, in
// request order.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

// handleBatch fans the items out across the experiment engine's worker
// pool. Each item participates in the response cache under the same key
// as the equivalent /v1/predict request, and item failures — including
// panics inside pooled workers — are isolated to the item's slot.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sw := w.(*statusWriter)
	var req BatchRequest
	if err := decodeRequestLimit(r, &req, maxBatchBodyBytes); err != nil {
		s.writeRequestError(w, err)
		return
	}
	if len(req.Items) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch needs at least one item")
		return
	}
	if len(req.Items) > maxBatchItems {
		s.writeError(w, http.StatusBadRequest,
			"batch of %d items exceeds the %d-item limit", len(req.Items), maxBatchItems)
		return
	}

	ctx := r.Context()
	items := make([]BatchItem, 0, len(req.Items))
	err := experiments.RunOrdered(s.cfg.Workers, len(req.Items),
		func(i int) (BatchItem, error) {
			// Batch-level context errors abort the whole request (there
			// is no per-item answer worth assembling for a vanished or
			// timed-out client); everything else stays in the item.
			if err := ctx.Err(); err != nil {
				return BatchItem{}, err
			}
			return s.batchItem(ctx, req.Items[i])
		},
		func(_ int, item BatchItem) error {
			items = append(items, item)
			return nil
		})
	if err != nil {
		s.finishComputeState(sw, 0, nil, "", err)
		return
	}
	body, err := EncodeIndented(BatchResponse{Items: items})
	s.finishComputeState(sw, http.StatusOK, body, "", err)
}

// badItem is a 400 outcome for one batch item.
func badItem(err error) BatchItem {
	return BatchItem{Status: http.StatusBadRequest, Error: err.Error()}
}

// batchItem evaluates one predict request, mapping every per-item
// failure mode onto the item itself; only context errors (client gone,
// batch deadline) escape as errors, aborting the whole batch. It
// recovers panics — its own and, via the response cache's compute
// guard, those of joined computations — so a poisoned item surfaces as
// a 500 in its slot instead of killing the pooled worker goroutine.
func (s *Server) batchItem(ctx context.Context, req PredictRequest) (item BatchItem, ctxErr error) {
	defer func() {
		if r := recover(); r != nil {
			item = BatchItem{
				Status: http.StatusInternalServerError,
				Error:  fmt.Sprintf("internal panic: %v", r),
			}
		}
	}()
	if err := req.Normalize(s.cfg.KeyDefaults()); err != nil {
		return badItem(err), nil
	}
	mode, err := ParseBranchMode(req.BranchMode)
	if err != nil {
		return badItem(err), nil
	}
	machine, err := req.Machine.Machine()
	if err != nil {
		return badItem(err), nil
	}
	ucfg, err := req.Machine.SimConfig()
	if err != nil {
		return badItem(err), nil
	}
	if err := machine.Validate(); err != nil {
		return badItem(err), nil
	}
	if err := ucfg.Validate(); err != nil {
		return badItem(err), nil
	}

	key, err := PredictCacheKey(req, s.cfg.KeyDefaults())
	if err != nil {
		return BatchItem{Status: http.StatusInternalServerError, Error: err.Error()}, nil
	}
	status, body, hit, err := s.cache.Do(key, func() (int, []byte, error) {
		if s.panicHook != nil {
			s.panicHook(req.Bench)
		}
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		rec, err := s.predictRecord(req, machine, ucfg, mode)
		if err != nil {
			return 0, nil, err
		}
		body, err := EncodeIndented(rec)
		if err != nil {
			return 0, nil, err
		}
		return http.StatusOK, body, nil
	})
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return BatchItem{}, err
	case err != nil:
		return BatchItem{Status: http.StatusInternalServerError, Error: err.Error()}, nil
	}
	s.noteRegisteredUse(req.Bench, hit)
	cache := "miss"
	if hit {
		cache = "hit"
	}
	return BatchItem{Status: status, Cache: cache, Body: string(body)}, nil
}
