package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestExtensionClusters(t *testing.T) {
	res, err := ExtensionClusters(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 {
		t.Fatalf("%d points, want 3 benches × 3 cluster counts", len(res.Points))
	}
	// Partitioning must not speed anything up, in either methodology.
	byBench := map[string][]ClusterPoint{}
	for _, p := range res.Points {
		byBench[p.Bench] = append(byBench[p.Bench], p)
	}
	for bench, pts := range byBench {
		for i := 1; i < len(pts); i++ {
			if pts[i].SimCPI < pts[i-1].SimCPI-1e-9 {
				t.Errorf("%s: sim CPI fell with more clusters: %+v", bench, pts)
			}
			// The model may dip slightly for I-cache-heavy workloads:
			// the inflated L lengthens the drain, which shrinks the
			// equation-(4) I-cache penalty. Tolerate small decreases.
			if pts[i].ModelCPI < pts[i-1].ModelCPI-0.03 {
				t.Errorf("%s: model CPI fell sharply with more clusters: %+v", bench, pts)
			}
		}
		// The model's predicted clustering slowdown tracks the machine's
		// within a factor of ~2.
		simDelta := pts[len(pts)-1].SimCPI - pts[0].SimCPI
		modelDelta := pts[len(pts)-1].ModelCPI - pts[0].ModelCPI
		if simDelta > 0.02 && (modelDelta < simDelta*0.4 || modelDelta > simDelta*2.5) {
			t.Errorf("%s: model clustering delta %v vs sim %v", bench, modelDelta, simDelta)
		}
	}
	if !strings.Contains(res.Render(), "partitioned") {
		t.Fatal("render incomplete")
	}
}

func TestPredictorStudy(t *testing.T) {
	s := smallSuite()
	s.Names = []string{"gzip"}
	res, err := PredictorStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	// gzip isn't in the study's benchmark list internally — the study
	// uses its own list; just verify structure and orderings.
	byPred := map[string]PredictorPoint{}
	for _, p := range res.Points {
		if p.Bench == "gzip" {
			byPred[p.Predictor] = p
		}
	}
	gshare, bimodal, taken := byPred["gshare"], byPred["bimodal"], byPred["always-taken"]
	if taken.MispredictRate <= gshare.MispredictRate {
		t.Fatalf("always-taken (%v) should mispredict more than gshare (%v)",
			taken.MispredictRate, gshare.MispredictRate)
	}
	if taken.SimCPI <= gshare.SimCPI {
		t.Fatal("a worse predictor must cost CPI in the machine")
	}
	if taken.ModelCPI <= gshare.ModelCPI {
		t.Fatal("a worse predictor must cost CPI in the model")
	}
	_ = bimodal
	if !strings.Contains(res.Render(), "misp/branch") {
		t.Fatal("render incomplete")
	}
}

func TestWindowSweep(t *testing.T) {
	res, err := WindowSweep(context.Background(), smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	// CPI must be non-increasing in window size, in both methodologies,
	// for each benchmark.
	byBench := map[string][]SweepPoint{}
	for _, p := range res.Points {
		byBench[p.Bench] = append(byBench[p.Bench], p)
	}
	for bench, pts := range byBench {
		for i := 1; i < len(pts); i++ {
			if pts[i].SimCPI > pts[i-1].SimCPI+0.01 {
				t.Errorf("%s: sim CPI rose with window: %+v", bench, pts)
			}
			if pts[i].ModelCPI > pts[i-1].ModelCPI+0.07 {
				t.Errorf("%s: model CPI rose sharply with window: %+v", bench, pts)
			}
		}
	}
	if !strings.Contains(res.Render(), "knee") {
		t.Fatal("render incomplete")
	}
}

func TestROBSweep(t *testing.T) {
	res, err := ROBSweep(context.Background(), smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	byBench := map[string][]SweepPoint{}
	for _, p := range res.Points {
		byBench[p.Bench] = append(byBench[p.Bench], p)
	}
	// mcf: a bigger ROB overlaps more long misses → CPI falls, and the
	// model follows because f_LDM is re-derived per size.
	pts := byBench["mcf"]
	if len(pts) == 0 {
		t.Fatal("mcf missing from ROB sweep")
	}
	if pts[len(pts)-1].SimCPI >= pts[0].SimCPI {
		t.Fatalf("mcf sim CPI did not fall with ROB: %+v", pts)
	}
	if pts[len(pts)-1].ModelCPI >= pts[0].ModelCPI {
		t.Fatalf("mcf model CPI did not fall with ROB: %+v", pts)
	}
	if !strings.Contains(res.Render(), "rob") {
		t.Fatal("render incomplete")
	}
}

func TestStatSimStudy(t *testing.T) {
	res, err := StatSimStudy(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The paper's claim: both methodologies land in the same accuracy
	// band. Loose bounds for the short suite.
	if res.MeanStatSimErr > 0.20 {
		t.Fatalf("statistical simulation error %v", res.MeanStatSimErr)
	}
	if res.MeanModelErr > 0.20 {
		t.Fatalf("model error %v", res.MeanModelErr)
	}
	if !strings.Contains(res.Render(), "stat-sim") {
		t.Fatal("render incomplete")
	}
}

func TestBranchBurstRefinement(t *testing.T) {
	res, err := BranchBurstRefinement(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.BurstFactor <= 0 || r.BurstFactor > 1 {
			t.Fatalf("%s: burst factor %v", r.Name, r.BurstFactor)
		}
	}
	// Both derivations stay in the usual accuracy band on this suite.
	if res.MeanMeasuredErr > 0.2 || res.MeanMidpointErr > 0.2 {
		t.Fatalf("errors midpoint %v / measured %v", res.MeanMidpointErr, res.MeanMeasuredErr)
	}
	if !strings.Contains(res.Render(), "burst factor") {
		t.Fatal("render incomplete")
	}
}

func TestFigure13PairCostsOneIsolatedPenalty(t *testing.T) {
	res, err := Figure13(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	// Equation (7): the overlapped pair's transient is about one
	// isolated transient plus the stagger, not two.
	if res.PairCycles > res.IsolatedCycles+res.Y+5 {
		t.Fatalf("pair transient %d cycles vs isolated %d+%d — overlap lost",
			res.PairCycles, res.IsolatedCycles, res.Y)
	}
	if res.PairCycles < res.IsolatedCycles {
		t.Fatalf("pair transient %d shorter than isolated %d", res.PairCycles, res.IsolatedCycles)
	}
	if !strings.Contains(res.Render(), "eq. 7") {
		t.Fatal("render incomplete")
	}
}

func TestCSVOutputs(t *testing.T) {
	res, err := Table1(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "bench,alpha,beta,R2,avg lat\n") {
		t.Fatalf("CSV header wrong: %q", csv[:40])
	}
	if strings.Count(csv, "\n") != 4 { // header + 3 benchmarks
		t.Fatalf("CSV rows: %q", csv)
	}
	f15, err := Figure15(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f15.CSV(), "model,simulation") {
		t.Fatal("figure 15 CSV missing columns")
	}
}

func TestMethodologyComparison(t *testing.T) {
	res, err := MethodologyComparison(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Every methodology lands within a loose band on the short suite.
	if res.MeanModelErr > 0.25 || res.MeanStatSimErr > 0.25 || res.MeanSampledErr > 0.30 {
		t.Fatalf("errors: model %v, statsim %v, sampled %v",
			res.MeanModelErr, res.MeanStatSimErr, res.MeanSampledErr)
	}
	// The model must be the cheapest by orders of magnitude.
	if res.ModelTime*100 > res.RefTime {
		t.Fatalf("model time %v not ≪ reference %v", res.ModelTime, res.RefTime)
	}
	if res.SampledFraction <= 0 || res.SampledFraction > 0.5 {
		t.Fatalf("sampled fraction %v", res.SampledFraction)
	}
	if !strings.Contains(res.Render(), "stat-sim") || !strings.Contains(res.CSV(), "bench,") {
		t.Fatal("render incomplete")
	}
}

func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("five full pipelines is slow")
	}
	s := smallSuite()
	res, err := SeedRobustness(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanErrs) != 5 {
		t.Fatalf("%d seeds", len(res.MeanErrs))
	}
	if res.Mean > 0.2 {
		t.Fatalf("mean of means %v", res.Mean)
	}
	if res.Stddev > 0.05 {
		t.Fatalf("seed spread %v too wide", res.Stddev)
	}
	if !strings.Contains(res.Render(), "mean of means") {
		t.Fatal("render incomplete")
	}
}

func TestFigure7TransientShape(t *testing.T) {
	res, err := Figure7(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if res.PenaltyCycles <= 0 {
		t.Fatalf("injected misprediction cost %d cycles", res.PenaltyCycles)
	}
	// The refill gap covers at least the front-end depth (fetch restarts
	// only after the branch resolves).
	if res.ZeroCycles < res.FrontEndDepth {
		t.Fatalf("zero-issue gap %d below the front-end depth %d", res.ZeroCycles, res.FrontEndDepth)
	}
	if len(res.Clean) == 0 || len(res.Dirty) != len(res.Clean) {
		t.Fatalf("trace windows: clean %d, dirty %d", len(res.Clean), len(res.Dirty))
	}
	// Before the divergence the traces agree.
	for i := 0; i < 8 && i < len(res.Clean); i++ {
		if res.Clean[i] != res.Dirty[i] {
			t.Fatalf("traces differ before the event at offset %d", i)
		}
	}
	if !strings.Contains(res.Render(), "with event") {
		t.Fatal("render incomplete")
	}
}

func TestInOrderBaseline(t *testing.T) {
	res, err := InOrderBaseline(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.InOrderCPI <= r.OOOCPI {
			t.Errorf("%s: in-order (%v) not slower than OOO (%v)", r.Name, r.InOrderCPI, r.OOOCPI)
		}
		// Window size must barely matter in order.
		if abs(r.InOrderSmallWin-r.InOrderCPI)/r.InOrderCPI > 0.05 {
			t.Errorf("%s: in-order CPI depends on window: %v vs %v", r.Name, r.InOrderSmallWin, r.InOrderCPI)
		}
	}
	if !strings.Contains(res.Render(), "slowdown") {
		t.Fatal("render incomplete")
	}
}

func TestLittlesLaw(t *testing.T) {
	res, err := LittlesLaw(smallSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The approximation holds to first order and errs on the high side
	// (dividing by the mean latency underestimates chain stretching).
	if res.MeanAbsErr > 0.3 {
		t.Fatalf("Little's-law error %v", res.MeanAbsErr)
	}
	for _, r := range res.Rows {
		if r.ScaledI1 < r.MeasuredIL*0.85 {
			t.Errorf("%s: I_1/L (%v) unexpectedly below measured (%v)", r.Name, r.ScaledI1, r.MeasuredIL)
		}
	}
	if !strings.Contains(res.Render(), "I_1 / L") {
		t.Fatal("render incomplete")
	}
}
